// Section VI reproduction: removal-attack robustness. Builds the same
// functional IP protected by (a) the stand-alone load-circuit watermark
// and (b) the embedded clock-modulation watermark, then runs the
// attacker's stand-alone-circuit analysis and the removal attack on both.
//
// Extended with the zero-area attack the paper does not model: trace
// desynchronisation (attack/desync.h). For each attack in the standard
// suite the bench reports the naive (triggered) detector's margin on the
// attacked capture against the blind-synchronised detector's — the
// robustness the sync subsystem buys back.
#include <iostream>

#include "attack/desync.h"
#include "attack/report.h"
#include "bench_common.h"
#include "sim/scenario.h"
#include "util/csv.h"

using namespace clockmark;

int main(int argc, char** argv) {
  bench::CliDefaults defaults;
  defaults.cycles = 120000;  // enough margin for the blind-sync study
  const bench::Cli cli(argc, argv, defaults);
  bench::print_header("sec6_robustness — removal + desync attack study",
                      "paper Section VI (improved robustness)");

  attack::RobustnessStudyConfig cfg;
  cfg.ip.groups = static_cast<std::size_t>(cli.args().get_int("groups", 4));
  cfg.ip.registers_per_group =
      static_cast<std::size_t>(cli.args().get_int("regs", 64));
  cfg.load_registers =
      static_cast<std::size_t>(cli.args().get_int("load_regs", 576));
  cfg.compare_cycles =
      static_cast<std::size_t>(cli.args().get_int("compare_cycles", 256));
  cli.reject_unknown();

  const auto report = attack::run_robustness_study(cfg);
  std::cout << "\n" << attack::to_string(report);

  std::cout << "paper's conclusions, checked:\n"
            << "  [" << (report.load_circuit.attacker_recall == 1.0 ? "x" : " ")
            << "] load-circuit watermark is a stand-alone circuit — fully "
               "identified by RTL inspection\n"
            << "  ["
            << (report.load_circuit.removal.functionally_intact() ? "x" : " ")
            << "] removing it has no impact on system function\n"
            << "  ["
            << (report.clock_modulation.attacker_recall == 0.0 ? "x" : " ")
            << "] clock-modulation watermark is NOT a stand-alone circuit "
               "(invisible to the same analysis)\n"
            << "  ["
            << (!report.clock_modulation.removal.functionally_intact() ? "x"
                                                                        : " ")
            << "] removing it greatly impairs the system's functionality\n";

  util::CsvWriter csv(cli.out_file("sec6_robustness.csv"));
  csv.text_row({"architecture", "wm_cells", "wm_registers",
                "attacker_recall", "unclocked_regs_after_removal",
                "output_mismatch_cycles", "functionally_intact"});
  for (const auto* a : {&report.load_circuit, &report.clock_modulation}) {
    csv.text_row({a->architecture, std::to_string(a->watermark_cells),
                  std::to_string(a->watermark_registers),
                  util::format_double(a->attacker_recall, 4),
                  std::to_string(a->removal.unclocked_registers),
                  std::to_string(a->removal.output_mismatch_cycles),
                  a->removal.functionally_intact() ? "yes" : "no"});
  }

  // --- Desynchronisation study: chip I capture, standard attack suite.
  std::cout << "\ndesynchronisation attacks (chip I, " << cli.cycles()
            << " cycles):\n"
            << "  attack             naive_z  synced_z  aligned_z  margin  "
               "locked\n";
  sim::ScenarioConfig scenario_cfg = sim::chip1_default();
  cli.apply(scenario_cfg);
  const sim::Scenario scenario(scenario_cfg);
  const sim::ScenarioResult rep0 = scenario.run(0);

  util::CsvWriter desync_csv(cli.out_file("sec6_desync.csv"));
  desync_csv.text_row({"attack", "naive_peak_z", "naive_detected",
                       "synced_peak_z", "synced_detected", "aligned_peak_z",
                       "recovered_margin", "sync_locked",
                       "sync_offset_cycles", "sync_ratio", "sync_drift"});
  bool all_recovered = true;
  for (const attack::DesyncAttack& a :
       attack::default_desync_suite(scenario_cfg.seed)) {
    const attack::DesyncOutcome out = attack::run_desync_attack(
        rep0.acquisition.per_cycle_power_w, rep0.pattern, a, {}, {},
        cli.executor());
    std::printf("  %-18s %7.2f  %8.2f  %9.2f  %5.1f%%  %s\n",
                a.name.c_str(), out.naive.spectrum.peak_z,
                out.synced.spectrum.peak_z, out.baseline_peak_z,
                100.0 * out.recovered_margin(),
                out.sync.locked ? "yes" : "no");
    all_recovered = all_recovered && out.synced.detected &&
                    out.recovered_margin() >= 0.9;
    desync_csv.text_row(
        {a.name, util::format_double(out.naive.spectrum.peak_z, 3),
         out.naive.detected ? "yes" : "no",
         util::format_double(out.synced.spectrum.peak_z, 3),
         out.synced.detected ? "yes" : "no",
         util::format_double(out.baseline_peak_z, 3),
         util::format_double(out.recovered_margin(), 4),
         out.sync.locked ? "yes" : "no",
         util::format_double(out.sync.correction.offset_cycles, 6),
         util::format_double(out.sync.correction.ratio, 9),
         util::format_double(out.sync.correction.drift, 12)});
  }
  std::cout << "  [" << (all_recovered ? "x" : " ")
            << "] blind sync recovers >= 90% of the aligned margin under "
               "every desync attack\n";
  return 0;
}
