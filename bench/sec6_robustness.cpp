// Section VI reproduction: removal-attack robustness. Builds the same
// functional IP protected by (a) the stand-alone load-circuit watermark
// and (b) the embedded clock-modulation watermark, then runs the
// attacker's stand-alone-circuit analysis and the removal attack on both.
#include <iostream>

#include "attack/report.h"
#include "bench_common.h"
#include "util/csv.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  bench::print_header("sec6_robustness — removal attack study",
                      "paper Section VI (improved robustness)");

  attack::RobustnessStudyConfig cfg;
  cfg.ip.groups = static_cast<std::size_t>(cli.args().get_int("groups", 4));
  cfg.ip.registers_per_group =
      static_cast<std::size_t>(cli.args().get_int("regs", 64));
  cfg.load_registers =
      static_cast<std::size_t>(cli.args().get_int("load_regs", 576));
  cfg.compare_cycles =
      static_cast<std::size_t>(cli.args().get_int("compare_cycles", 256));
  cli.reject_unknown();

  const auto report = attack::run_robustness_study(cfg);
  std::cout << "\n" << attack::to_string(report);

  std::cout << "paper's conclusions, checked:\n"
            << "  [" << (report.load_circuit.attacker_recall == 1.0 ? "x" : " ")
            << "] load-circuit watermark is a stand-alone circuit — fully "
               "identified by RTL inspection\n"
            << "  ["
            << (report.load_circuit.removal.functionally_intact() ? "x" : " ")
            << "] removing it has no impact on system function\n"
            << "  ["
            << (report.clock_modulation.attacker_recall == 0.0 ? "x" : " ")
            << "] clock-modulation watermark is NOT a stand-alone circuit "
               "(invisible to the same analysis)\n"
            << "  ["
            << (!report.clock_modulation.removal.functionally_intact() ? "x"
                                                                        : " ")
            << "] removing it greatly impairs the system's functionality\n";

  util::CsvWriter csv(cli.out_file("sec6_robustness.csv"));
  csv.text_row({"architecture", "wm_cells", "wm_registers",
                "attacker_recall", "unclocked_regs_after_removal",
                "output_mismatch_cycles", "functionally_intact"});
  for (const auto* a : {&report.load_circuit, &report.clock_modulation}) {
    csv.text_row({a->architecture, std::to_string(a->watermark_cells),
                  std::to_string(a->watermark_registers),
                  util::format_double(a->attacker_recall, 4),
                  std::to_string(a->removal.unclocked_registers),
                  std::to_string(a->removal.output_mismatch_cycles),
                  a->removal.functionally_intact() ? "yes" : "no"});
  }
  return 0;
}
