// Ablation: detection-service throughput under a multi-tenant job mix.
//
// A DetectionService with a bounded fair queue takes --jobs batch
// detections spread round-robin over --tenants tenants. Every tenant
// references the same small set of scenario captures, so the run shows
// what the ResourceBroker buys: the expensive gate-level
// characterisations are built once and every later job rides the memo.
// Two phases are measured separately:
//
//   triggered   plain batch verdicts over memoized scenario traces —
//               the scheduling + cache fast path;
//   blind       the same captures decided with blind synchronisation,
//               sharing one CandidateEngine across all tenants.
//
// --json=PATH writes jobs_per_sec / run_s_per_rep per phase
// (BENCH_service.json in the tier-1 smoke run; the committed baseline in
// bench_results/ was recorded with the smoke flags at --threads=1).
#include <algorithm>
#include <chrono>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/service.h"
#include "util/csv.h"

using namespace clockmark;

namespace {

struct PhaseResult {
  double wall_s = 0.0;
  double mean_run_s = 0.0;
  std::size_t done = 0;
  std::size_t scenario_hits = 0;
  std::size_t engine_hits = 0;
};

PhaseResult run_phase(serve::DetectionService& service, std::size_t jobs,
                      std::size_t tenants,
                      const std::vector<serve::ScenarioRef>& refs,
                      bool blind) {
  std::vector<serve::JobTicket> tickets;
  tickets.reserve(jobs);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < jobs; ++i) {
    serve::JobSpec spec;
    spec.tenant = "tenant-" + std::to_string(i % tenants);
    spec.scenario = refs[i % refs.size()];
    spec.scenario->repetition = i;  // distinct captures, one memo each
    if (blind) spec.request.sync = sync::SyncPolicy::kBlind;
    tickets.push_back(service.submit(std::move(spec)));
  }
  PhaseResult result;
  for (const serve::JobTicket& ticket : tickets) {
    const serve::JobResult r = ticket.result.get();
    if (r.status == serve::JobStatus::kDone) ++result.done;
    result.mean_run_s += r.timing.run_s;
    result.scenario_hits += r.cache.scenario_hit ? 1 : 0;
    result.engine_hits += r.cache.engine_hit ? 1 : 0;
  }
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  if (!tickets.empty()) {
    result.mean_run_s /= static_cast<double>(tickets.size());
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv, {.cycles = 20000});
  const auto jobs = static_cast<std::size_t>(cli.args().get_int("jobs", 32));
  const auto tenants = std::max<std::size_t>(
      1, static_cast<std::size_t>(cli.args().get_int("tenants", 4)));
  const auto queue_capacity =
      static_cast<std::size_t>(cli.args().get_int("queue", 64));
  cli.reject_unknown();
  bench::print_header(
      "abl_service_load — multi-tenant detection service throughput",
      "Sec. V detection, served as scheduled jobs over shared caches");

  serve::ServiceConfig config;
  config.workers = cli.threads();
  config.queue_capacity = queue_capacity;
  config.executor = cli.executor();
  serve::DetectionService service(config);

  // One scenario memo per tenant (distinct seeds), every tenant's jobs
  // cycling over all of them — cross-tenant sharing by construction.
  std::vector<serve::ScenarioRef> refs(std::min<std::size_t>(tenants, 4));
  for (std::size_t i = 0; i < refs.size(); ++i) {
    refs[i].chip = 1;
    refs[i].trace_cycles = cli.cycles();
    refs[i].seed = cli.seed() != 0 ? cli.seed() + i : 1 + i;
    refs[i].scope_noise_v_rms = 2e-3;
    refs[i].probe_noise_v_rms = 0.5e-3;
  }

  const std::size_t blind_jobs = std::max<std::size_t>(2, jobs / 4);
  std::cout << jobs << " triggered + " << blind_jobs << " blind jobs, "
            << tenants << " tenants, " << config.workers << " worker(s), "
            << cli.cycles() << "-cycle captures, queue " << queue_capacity
            << "\n\n";

  const PhaseResult triggered =
      run_phase(service, jobs, tenants, refs, /*blind=*/false);
  const PhaseResult blind =
      run_phase(service, blind_jobs, tenants, refs, /*blind=*/true);
  service.shutdown(/*drain_queued=*/true);

  const serve::ServiceStats stats = service.stats();
  util::CsvWriter csv(cli.out_file("abl_service_load.csv"));
  csv.header({"phase", "jobs", "tenants", "wall_s", "jobs_per_sec",
              "mean_run_s", "scenario_hits", "engine_hits"});
  const auto report = [&](const char* phase, std::size_t n,
                          const PhaseResult& r) {
    const double per_sec =
        r.wall_s > 0.0 ? static_cast<double>(n) / r.wall_s : 0.0;
    std::cout << std::left << std::setw(9) << phase << ": " << r.done << "/"
              << n << " verdicts in "
              << r.wall_s << "s (" << per_sec << " jobs/s, mean run "
              << r.mean_run_s << "s, scenario hits " << r.scenario_hits
              << "/" << n << ", engine hits " << r.engine_hits << "/" << n
              << ")\n";
    csv.text_row({phase, std::to_string(n), std::to_string(tenants),
                  std::to_string(r.wall_s), std::to_string(per_sec),
                  std::to_string(r.mean_run_s),
                  std::to_string(r.scenario_hits),
                  std::to_string(r.engine_hits)});
    return per_sec;
  };
  const double triggered_per_sec = report("triggered", jobs, triggered);
  const double blind_per_sec = report("blind", blind_jobs, blind);
  std::cout << "\nqueue high-water " << stats.queue.high_water << "/"
            << stats.queue.capacity << ", broker "
            << stats.broker.hits << " hits / " << stats.broker.misses
            << " builds, " << stats.broker.bytes << " bytes retained\n";

  if (triggered.done != jobs || blind.done != blind_jobs) {
    std::cerr << "error: not every job produced a verdict\n";
    return 1;
  }

  if (!cli.json_path().empty()) {
    bench::BenchJson json("abl_service_load", cli.threads());
    auto& t = json.add_record("triggered");
    bench::BenchJson::add_metric(t, "jobs_per_sec", triggered_per_sec);
    bench::BenchJson::add_metric(t, "run_s_per_rep", triggered.mean_run_s);
    bench::BenchJson::add_metric(
        t, "scenario_hit_rate",
        static_cast<double>(triggered.scenario_hits) /
            static_cast<double>(jobs));
    auto& b = json.add_record("blind");
    bench::BenchJson::add_metric(b, "jobs_per_sec", blind_per_sec);
    bench::BenchJson::add_metric(b, "run_s_per_rep", blind.mean_run_s);
    bench::BenchJson::add_metric(
        b, "engine_hit_rate",
        static_cast<double>(blind.engine_hits) /
            static_cast<double>(blind_jobs));
    if (!json.write(cli.json_path())) return 1;
  }
  return 0;
}
