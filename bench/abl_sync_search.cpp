// Ablation: the blind synchronisation search (sync/search.h). For every
// repetition the bench captures a chip I trace, desynchronises it with
// each attack in the standard suite (attack/desync.h), and runs the
// coarse-to-fine blind lock. Reported per attack and aggregated:
//
//   lock rate      fraction of (rep, attack) runs where the search
//                  locked (peak z over the min_lock_z bar),
//   time to lock   wall-clock seconds per find_sync call,
//   margin         blind-synced peak z / cycle-aligned peak z — how much
//                  of the triggered detection margin the lock buys back
//                  (the PR acceptance bar is >= 0.9 on the paper-length
//                  captures; short smoke runs report what they see).
//
// --json=PATH writes BenchJson records (BENCH_sync.json): lock_rate,
// locks_per_sec and sync_search_s_per_rep feed scripts/perf_gate.py in
// the tier-1 smoke, margin_vs_aligned tracks detection quality. Two
// records are written: "blind_lock" is the exact default search (run
// through a shared sync::CandidateEngine, as the detection entry points
// do), "blind_lock_pruned" the progressive-resolution mode
// (BlindSyncConfig::coarse_top_k) that rescoring only the top window
// candidates on the full trace buys.
#include <chrono>
#include <iomanip>
#include <iostream>
#include <vector>

#include "attack/desync.h"
#include "bench_common.h"
#include "cpa/detector.h"
#include "sync/engine.h"
#include "sync/search.h"
#include "sync/warp.h"
#include "util/csv.h"

using namespace clockmark;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Aggregates for one search mode across all (rep, attack) runs.
struct ModeStats {
  std::size_t locks = 0;
  std::size_t runs = 0;
  double search_s = 0.0;
  double margin_sum = 0.0;

  double lock_rate() const {
    return runs ? static_cast<double>(locks) / static_cast<double>(runs)
                : 0.0;
  }
  double locks_per_sec() const {
    return search_s > 0.0 ? static_cast<double>(runs) / search_s : 0.0;
  }
  double mean_margin() const {
    return runs ? margin_sum / static_cast<double>(runs) : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::CliDefaults defaults;
  defaults.reps = 3;
  defaults.cycles = 120000;
  const bench::Cli cli(argc, argv, defaults);
  cli.reject_unknown();
  bench::print_header("abl_sync_search — blind synchronisation lock",
                      "extends paper Sec. IV (untriggered capture)");

  sim::ScenarioConfig cfg = sim::chip1_default();
  cli.apply(cfg);
  const sim::Scenario scenario(cfg);
  const cpa::Detector detector;

  std::cout << "chip I, " << cli.cycles() << " cycles, " << cli.reps()
            << " repetitions x " << attack::default_desync_suite().size()
            << " desync attacks\n\n"
            << std::setw(5) << "rep" << std::setw(20) << "attack"
            << std::setw(9) << "locked" << std::setw(11) << "aligned_z"
            << std::setw(10) << "naive_z" << std::setw(11) << "synced_z"
            << std::setw(9) << "margin" << std::setw(10) << "lock_s"
            << "\n";

  util::CsvWriter csv(cli.out_file("abl_sync_search.csv"));
  csv.text_row({"rep", "attack", "locked", "aligned_peak_z", "naive_peak_z",
                "synced_peak_z", "margin", "lock_seconds", "evaluations"});

  sync::BlindSyncConfig exact_cfg;  // defaults: the historical search
  sync::BlindSyncConfig pruned_cfg;
  pruned_cfg.coarse_top_k = 4;

  ModeStats exact, pruned;
  for (std::size_t rep = 0; rep < cli.reps(); ++rep) {
    const sim::ScenarioResult r = scenario.run(rep);
    // One engine per repetition, shared across attacks and both modes —
    // the reuse the detection entry points get from their cached engine.
    const sync::CandidateEngine engine(r.pattern);
    const double aligned_z =
        detector.detect(r.acquisition.per_cycle_power_w, r.pattern)
            .spectrum.peak_z;
    for (const attack::DesyncAttack& a :
         attack::default_desync_suite(cfg.seed + rep)) {
      const std::vector<double> attacked =
          attack::apply_desync(r.acquisition.per_cycle_power_w, a);
      const double naive_z =
          detector.detect(attacked, r.pattern).spectrum.peak_z;

      const auto t0 = std::chrono::steady_clock::now();
      const sync::SyncEstimate est =
          sync::find_sync(engine, attacked, exact_cfg, cli.executor());
      const double lock_s = seconds_since(t0);

      const std::vector<double> corrected =
          est.correction.is_identity()
              ? attacked
              : sync::warp_trace(attacked, est.correction);
      const double synced_z =
          detector.detect(corrected, r.pattern).spectrum.peak_z;
      const double margin = aligned_z > 0.0 ? synced_z / aligned_z : 0.0;

      ++exact.runs;
      exact.locks += est.locked ? 1 : 0;
      exact.search_s += lock_s;
      exact.margin_sum += margin;

      std::cout << std::setw(5) << rep << std::setw(20) << a.name
                << std::setw(9) << (est.locked ? "yes" : "no")
                << std::setw(11) << std::fixed << std::setprecision(2)
                << aligned_z << std::setw(10) << naive_z << std::setw(11)
                << synced_z << std::setw(9) << std::setprecision(3) << margin
                << std::setw(10) << lock_s << "\n";
      csv.text_row({std::to_string(rep), a.name, est.locked ? "1" : "0",
                    util::format_double(aligned_z, 4),
                    util::format_double(naive_z, 4),
                    util::format_double(synced_z, 4),
                    util::format_double(margin, 4),
                    util::format_double(lock_s, 6),
                    std::to_string(est.evaluations)});

      // Pruned mode on the same attacked trace (aggregates only).
      const auto t1 = std::chrono::steady_clock::now();
      const sync::SyncEstimate est_p =
          sync::find_sync(engine, attacked, pruned_cfg, cli.executor());
      const double lock_p_s = seconds_since(t1);
      const std::vector<double> corrected_p =
          est_p.correction.is_identity()
              ? attacked
              : sync::warp_trace(attacked, est_p.correction);
      const double synced_p_z =
          detector.detect(corrected_p, r.pattern).spectrum.peak_z;
      ++pruned.runs;
      pruned.locks += est_p.locked ? 1 : 0;
      pruned.search_s += lock_p_s;
      pruned.margin_sum += aligned_z > 0.0 ? synced_p_z / aligned_z : 0.0;
    }
  }

  std::cout << "\nexact:  lock rate " << std::setprecision(3)
            << exact.lock_rate() << " (" << exact.locks << "/" << exact.runs
            << "), " << exact.locks_per_sec()
            << " locks/sec, mean margin vs aligned " << exact.mean_margin()
            << "\npruned: lock rate " << pruned.lock_rate() << " ("
            << pruned.locks << "/" << pruned.runs << "), "
            << pruned.locks_per_sec() << " locks/sec (coarse_top_k="
            << pruned_cfg.coarse_top_k << "), mean margin vs aligned "
            << pruned.mean_margin() << "\n";

  if (!cli.json_path().empty()) {
    bench::BenchJson json("abl_sync_search", cli.threads());
    const auto add_mode = [&](const char* name, const ModeStats& m) {
      auto& rec = json.add_record(name);
      bench::BenchJson::add_metric(rec, "lock_rate", m.lock_rate());
      bench::BenchJson::add_metric(rec, "locks_per_sec", m.locks_per_sec());
      bench::BenchJson::add_metric(
          rec, "sync_search_s_per_rep",
          cli.reps() ? m.search_s / static_cast<double>(cli.reps()) : 0.0);
      bench::BenchJson::add_metric(rec, "margin_vs_aligned",
                                   m.mean_margin());
      bench::BenchJson::add_metric(rec, "runs",
                                   static_cast<double>(m.runs));
    };
    add_mode("blind_lock", exact);
    add_mode("blind_lock_pruned", pruned);
    json.write(cli.json_path());
  }
  return exact.lock_rate() == 1.0 && pruned.lock_rate() == 1.0 ? 0 : 1;
}
