// Micro-benchmark: the CPA rotation-correlation implementations.
// Demonstrates why the folded/FFT forms matter: the paper's sweep is
// P = 4095 rotations over N = 300,000 cycles — O(N*P) naive costs ~1.2e9
// multiply-adds per spread spectrum, the folded form O(N + P^2), and the
// FFT form O(N + P log P). The register-blocked kernel
// (cpa::correlate_rotations_blocked) is benched both raw (BM_Blocked)
// and through the kNaive dispatch it now backs (BM_Naive); the
// reference one-rotation-per-pass sweep it replaced stays measurable as
// BM_NaiveRef.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cpa/correlation.h"
#include "dsp/correlate.h"
#include "runtime/executor.h"
#include "sequence/lfsr.h"
#include "sequence/polynomials.h"
#include "util/rng.h"

namespace {

using clockmark::cpa::CorrelationMethod;

std::vector<double> make_pattern(unsigned width) {
  clockmark::sequence::Lfsr lfsr(
      width, clockmark::sequence::maximal_taps(width), 1);
  std::vector<double> p((1u << width) - 1u);
  for (auto& v : p) v = lfsr.step() ? 1.0 : 0.0;
  return p;
}

std::vector<double> make_trace(std::size_t n) {
  clockmark::util::Pcg32 rng(42);
  std::vector<double> y(n);
  for (auto& v : y) v = rng.gaussian(2e-3, 1e-4);
  return y;
}

void run(benchmark::State& state, CorrelationMethod method) {
  const auto width = static_cast<unsigned>(state.range(0));
  const auto cycles = static_cast<std::size_t>(state.range(1));
  const auto pattern = make_pattern(width);
  const auto trace = make_trace(cycles);
  for (auto _ : state) {
    auto rho = clockmark::cpa::correlate_rotations(trace, pattern, method);
    benchmark::DoNotOptimize(rho.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(cycles));
}

void BM_Naive(benchmark::State& state) {
  run(state, CorrelationMethod::kNaive);
}
void BM_Folded(benchmark::State& state) {
  run(state, CorrelationMethod::kFolded);
}
void BM_Fft(benchmark::State& state) { run(state, CorrelationMethod::kFft); }

// The pre-blocking naive sweep: one materialised model vector and one
// Pearson pass per rotation (dsp::rotation_correlation_naive). The
// baseline the blocked kernel is measured against.
void BM_NaiveRef(benchmark::State& state) {
  const auto width = static_cast<unsigned>(state.range(0));
  const auto cycles = static_cast<std::size_t>(state.range(1));
  const auto pattern = make_pattern(width);
  const auto trace = make_trace(cycles);
  for (auto _ : state) {
    auto rho = clockmark::dsp::rotation_correlation_naive(trace, pattern);
    benchmark::DoNotOptimize(rho.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(cycles));
}

// The raw register-blocked kernel, swept over all rotations in blocks
// of kRotationBlockLanes — the same block partition the kNaive dispatch
// runs, minus the dispatch itself and the rho allocation.
void BM_Blocked(benchmark::State& state) {
  const auto width = static_cast<unsigned>(state.range(0));
  const auto cycles = static_cast<std::size_t>(state.range(1));
  const auto pattern = make_pattern(width);
  const auto trace = make_trace(cycles);
  const std::size_t period = pattern.size();
  std::vector<double> rho(period, 0.0);
  for (auto _ : state) {
    for (std::size_t r0 = 0; r0 < period;
         r0 += clockmark::cpa::kRotationBlockLanes) {
      const std::size_t count =
          std::min(clockmark::cpa::kRotationBlockLanes, period - r0);
      clockmark::cpa::correlate_rotations_blocked(
          trace, pattern, r0, std::span<double>(rho).subspan(r0, count));
    }
    benchmark::DoNotOptimize(rho.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(cycles));
}

// The naive sweep again, chunked over a thread pool (rotations are
// independent). Thread count = range(2).
void BM_NaiveParallel(benchmark::State& state) {
  const auto width = static_cast<unsigned>(state.range(0));
  const auto cycles = static_cast<std::size_t>(state.range(1));
  const auto threads = static_cast<std::size_t>(state.range(2));
  const auto pattern = make_pattern(width);
  const auto trace = make_trace(cycles);
  clockmark::runtime::Executor executor(threads);
  for (auto _ : state) {
    auto rho = clockmark::cpa::correlate_rotations(
        trace, pattern, CorrelationMethod::kNaive, &executor);
    benchmark::DoNotOptimize(rho.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(cycles));
}

// Captures per-benchmark results alongside the normal console output so
// --json=PATH can record them (cpu time per iteration, items/sec).
class JsonCapture : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    double cpu_s_per_iter = 0.0;
    double items_per_sec = 0.0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Entry e;
      e.name = run.benchmark_name();
      e.cpu_s_per_iter =
          run.iterations > 0
              ? run.cpu_accumulated_time / static_cast<double>(run.iterations)
              : 0.0;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        e.items_per_sec = static_cast<double>(it->second);
      }
      entries_.push_back(std::move(e));
    }
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace

// Naive only at reduced scale (the full paper-size naive sweep takes
// seconds per iteration). The {5, 120000} shape is the chip-I bench
// configuration (LFSR width 5 → P = 31 over 120k cycles) where the
// naive-vs-blocked comparison is tracked by perf_gate.
BENCHMARK(BM_Naive)->Args({10, 30000})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NaiveRef)->Args({5, 120000})->Unit(benchmark::kMillisecond);
// {10, 30000} is the rotation-sweep record tracked by perf_gate: a full
// P = 1023 sweep at study scale through the raw blocked kernel, the
// shape the presence-scan and blind-sync paths hit hardest.
BENCHMARK(BM_Blocked)
    ->Args({5, 120000})
    ->Args({10, 30000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NaiveParallel)
    ->Args({10, 30000, 2})
    ->Args({10, 30000, 4})
    ->Args({10, 30000, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Folded)
    ->Args({10, 30000})
    ->Args({5, 120000})
    ->Args({12, 300000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fft)
    ->Args({10, 30000})
    ->Args({12, 300000})
    ->Args({16, 300000})
    ->Unit(benchmark::kMillisecond);

// Custom main instead of BENCHMARK_MAIN(): strips our --json=PATH flag
// before google-benchmark parses the remaining arguments, then writes
// the captured results as a BenchJson perf record.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  JsonCapture reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_path.empty()) {
    clockmark::bench::BenchJson json("abl_cpa_speed", /*threads=*/1);
    for (const auto& e : reporter.entries()) {
      auto& rec = json.add_record(e.name);
      clockmark::bench::BenchJson::add_metric(rec, "cpu_s_per_iter",
                                              e.cpu_s_per_iter);
      clockmark::bench::BenchJson::add_metric(rec, "items_per_sec",
                                              e.items_per_sec);
    }
    json.write(json_path);
  }
  benchmark::Shutdown();
  return 0;
}
