// Ablation: the presence-scan attack. An attacker without the key tries
// every (width, polynomial) hypothesis against a captured trace; because
// the CPA sweep covers all rotations, each hypothesis costs one spread
// spectrum. Three experiments:
//   1. Default-key watermark: the scan finds it AND identifies width +
//      polynomial + phase — LFSR watermark keys are enumerable.
//   2. The defender rotates to a different primitive polynomial of the
//      same width: the table scan (one polynomial per width) misses it;
//      a full scan must enumerate phi(2^w-1)/w polynomials.
//   3. The enumeration-cost table: why 32-bit (or Gold-code) keys put
//      the scan out of reach.
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <utility>

#include "attack/presence.h"
#include "bench_common.h"
#include "sequence/lfsr.h"
#include "sequence/polynomials.h"
#include "sim/scenario.h"
#include "util/csv.h"

using namespace clockmark;

namespace {

/// Finds a primitive polynomial of the given width different from the
/// library's table entry, by brute force (maximal period check).
std::uint32_t find_alternate_taps(unsigned width) {
  const std::uint32_t table_taps = sequence::maximal_taps(width);
  const std::uint32_t mask = (1u << width) - 1u;
  const auto period = static_cast<std::size_t>(
      sequence::maximal_period(width));
  for (std::uint32_t taps = 3; taps <= mask; taps += 2) {  // bit0 always
    if (taps == table_taps) continue;
    sequence::Lfsr lfsr(width, taps, 1);
    if (lfsr.measure_period() == period) return taps;
  }
  return table_taps;  // unreachable for width >= 3
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.cycles = 150000});
  cli.reject_unknown();
  bench::print_header("abl_presence_scan — key-space enumeration attack",
                      "extends paper Sec. VI (detectability by others)");

  util::CsvWriter csv(cli.out_file("abl_presence_scan.csv"));
  csv.text_row({"experiment", "width", "peak_z", "found"});

  // --- 1. default key: the scan wins -----------------------------------
  // The attacker's captures ride the batched SoA acquisition path
  // (Scenario::run_batch, bit-identical to run(rep)); every capture is
  // scanned and the verdict aggregated, so --reps > 1 measures how
  // repeatable the exposure is.
  const std::size_t reps = std::max<std::size_t>(cli.reps(), 1);
  {
    auto cfg = sim::chip1_default();
    cli.apply(cfg);
    sim::Scenario scenario(cfg);
    const auto captures = scenario.run_batch(0, reps);
    std::size_t found = 0;
    attack::PresenceScanResult scan;
    for (std::size_t rep = 0; rep < captures.size(); ++rep) {
      auto rep_scan = attack::scan_for_watermark(
          captures[rep].acquisition.per_cycle_power_w, 7, 14, {},
          cli.executor());
      if (rep_scan.watermark_found) ++found;
      if (rep == 0) scan = std::move(rep_scan);
    }
    std::cout << "\n[1] watermark keyed with the table polynomial of "
                 "width 12:\n";
    for (const auto& c : scan.candidates) {
      std::cout << "    width " << std::setw(2) << c.width << ": z="
                << std::fixed << std::setprecision(1) << std::setw(6)
                << c.peak_z << (c.detected ? "  <-- FOUND" : "") << "\n";
      csv.text_row({"default_key", std::to_string(c.width),
                    util::format_double(c.peak_z, 4),
                    c.detected ? "1" : "0"});
    }
    const auto& best = scan.candidates[scan.best];
    std::cout << "    attacker learns: width=" << best.width
              << ", polynomial=0x" << std::hex << best.taps << std::dec
              << ", phase=" << best.peak_rotation << " -> "
              << (scan.watermark_found ? "watermark EXPOSED"
                                       : "nothing found")
              << " (in " << found << "/" << reps << " captures)\n";
  }

  // --- 2. rotated key: the table scan loses ----------------------------
  {
    auto cfg = sim::chip1_default();
    cli.apply(cfg);
    cfg.watermark.wgc.taps = find_alternate_taps(12);
    sim::Scenario scenario(cfg);
    const auto r = scenario.run_batch(0, 1).front();
    const auto scan = attack::scan_for_watermark(
        r.acquisition.per_cycle_power_w, 7, 14, {}, cli.executor());
    std::cout << "\n[2] defender rotates to alternate primitive "
                 "polynomial 0x"
              << std::hex << cfg.watermark.wgc.taps << std::dec
              << " (same width):\n    table scan result: "
              << (scan.watermark_found
                      ? "FOUND (unexpected)"
                      : "nothing found — attacker must enumerate the "
                        "whole polynomial family")
              << "\n";
    csv.text_row({"rotated_key", "12", "-",
                  scan.watermark_found ? "1" : "0"});
  }

  // --- 3. enumeration cost ----------------------------------------------
  std::cout << "\n[3] full-enumeration cost (primitive polynomials per "
               "width, phi(2^w-1)/w):\n";
  std::cout << std::setw(8) << "width" << std::setw(16) << "polynomials"
            << std::setw(22) << "scan cost (sweeps)" << "\n";
  for (const unsigned w : {8u, 12u, 16u, 20u, 24u, 32u}) {
    const auto polys = attack::primitive_polynomial_count(w);
    std::cout << std::setw(8) << w << std::setw(16) << polys
              << std::setw(22) << polys << "\n";
    csv.text_row({"enumeration_cost", std::to_string(w),
                  std::to_string(polys), "-"});
  }
  std::cout << "\n(the paper's WGC supports 32-bit generators: ~67 million "
               "polynomial candidates per capture — enumeration becomes "
               "impractical, and Gold-code keys, cf. abl_dual_watermark, "
               "grow the space further)\n";
  return 0;
}
