// Fig. 5 reproduction: spread spectra of CPA correlation results on both
// chips, with the watermark active and inactive — four panels:
//   (a) chip I  active    -> single peak near rotation 3800
//   (b) chip I  inactive  -> no peak
//   (c) chip II active    -> single (slightly lower) peak near 2400
//   (d) chip II inactive  -> no peak
#include <iostream>

#include "bench_common.h"
#include "detect/session.h"
#include "util/ascii_chart.h"
#include "util/csv.h"

using namespace clockmark;

namespace {

struct Panel {
  std::string name;
  std::string paper;
  sim::ChipModel chip;
  bool active;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.cycles = 300000});
  cli.reject_unknown();
  const std::size_t cycles = cli.cycles();

  bench::print_header("fig5_spread_spectra — CPA spread spectra",
                      "paper Fig. 5(a-d), 300,000 cycles per rho");

  const Panel panels[] = {
      {"(a) chip I, watermark active",
       "peak ~0.015-0.02 near rotation 3800", sim::ChipModel::kChip1, true},
      {"(b) chip I, watermark inactive", "no peak",
       sim::ChipModel::kChip1, false},
      {"(c) chip II, watermark active",
       "peak (slightly lower) near rotation 2400", sim::ChipModel::kChip2,
       true},
      {"(d) chip II, watermark inactive", "no peak",
       sim::ChipModel::kChip2, false},
  };

  util::CsvWriter csv(cli.out_file("fig5_spread_spectra.csv"));
  csv.text_row({"panel", "rotation", "rho"});

  for (const auto& p : panels) {
    auto cfg = p.chip == sim::ChipModel::kChip1 ? sim::chip1_default()
                                                : sim::chip2_default();
    cfg.trace_cycles = cycles;
    cfg.watermark_active = p.active;
    sim::Scenario scenario(cfg);
    const detect::Report exp = detect::Session().run(scenario, 0);
    const auto& ss = exp.detection.spectrum;

    util::ChartOptions opts;
    opts.width = 100;
    opts.height = 12;
    opts.title = "Fig. 5 " + p.name + "   [paper: " + p.paper + "]";
    opts.x_label = "watermark sequence rotation (0..4094)";
    std::cout << "\n" << util::line_chart(ss.rho, opts);
    std::cout << "  peak rho = " << ss.peak_value << " at rotation "
              << ss.peak_rotation << " (z = " << ss.peak_z
              << ", noise floor sigma = " << ss.noise_std << ")\n  "
              << (exp.detection.detected ? "WATERMARK DETECTED"
                                         : "no watermark detected")
              << " — " << exp.detection.reason << "\n";

    for (std::size_t r = 0; r < ss.rho.size(); ++r) {
      csv.text_row({p.name, std::to_string(r),
                    util::format_double(ss.rho[r], 8)});
    }
  }
  return 0;
}
