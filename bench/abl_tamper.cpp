// Ablation: the bypass (tamper) attack and its countermeasure. Stronger
// than removal (Sec. VI): the attacker rewires the modulated clock-gate
// enables back to their original CLK_CTRL signals, restoring function
// while silencing the watermark. Finding the modulation points is the
// hard part — the naive embedding leaks them through the WMARK net's
// fan-out signature; stage-diversified embedding does not.
#include <iomanip>
#include <iostream>

#include "attack/tamper.h"
#include "bench_common.h"
#include "util/csv.h"
#include "watermark/embedder.h"

using namespace clockmark;

namespace {

struct Design {
  rtl::Netlist nl;
  rtl::NetId clk = 0;
  watermark::DemoIpBlock ip;
};

Design make_ip(std::size_t groups, std::size_t regs) {
  Design d;
  d.clk = d.nl.add_net("clk");
  d.ip = watermark::build_demo_ip_block(d.nl, "soc/ip", d.clk,
                                        {groups, regs});
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  const auto groups = static_cast<std::size_t>(cli.args().get_int("groups", 6));
  const auto regs = static_cast<std::size_t>(cli.args().get_int("regs", 48));
  cli.reject_unknown();
  bench::print_header("abl_tamper — bypass attack vs embeddings",
                      "extends paper Sec. VI (tampering, not removal)");

  wgc::WgcConfig key;
  key.width = 12;

  util::CsvWriter csv(cli.out_file("abl_tamper.csv"));
  csv.text_row({"embedding", "suspects", "bypassed", "function_restored",
                "watermark_still_wired"});

  struct Row {
    const char* name;
    attack::TamperOutcome outcome;
  };
  std::vector<Row> rows;

  {
    Design wm = make_ip(groups, regs);
    watermark::embed_clock_modulation(wm.nl, "soc/wgc", wm.clk, key,
                                      wm.ip.icgs);
    Design ref = make_ip(groups, regs);
    rows.push_back({"naive (single WMARK net)",
                    attack::bypass_attack(wm.nl, ref.nl, wm.clk, ref.clk,
                                          wm.ip.data_out, ref.ip.data_out,
                                          "soc/wgc")});
  }
  {
    Design wm = make_ip(groups, regs);
    watermark::embed_clock_modulation_diversified(wm.nl, "soc/wgc", wm.clk,
                                                  key, wm.ip.icgs);
    Design ref = make_ip(groups, regs);
    rows.push_back({"diversified (per-stage nets)",
                    attack::bypass_attack(wm.nl, ref.nl, wm.clk, ref.clk,
                                          wm.ip.data_out, ref.ip.data_out,
                                          "soc/wgc")});
  }

  std::cout << "\n" << std::left << std::setw(32) << "embedding"
            << std::right << std::setw(10) << "suspects" << std::setw(10)
            << "bypassed" << std::setw(12) << "restored?" << std::setw(14)
            << "wm wired?" << "\n";
  for (const auto& row : rows) {
    const auto& o = row.outcome;
    std::cout << std::left << std::setw(32) << row.name << std::right
              << std::setw(10) << o.suspects_found << std::setw(10)
              << o.gates_bypassed << std::setw(12)
              << (o.function_restored ? "yes" : "no") << std::setw(14)
              << (o.watermark_still_wired ? "yes" : "no") << "\n";
    csv.text_row({row.name, std::to_string(o.suspects_found),
                  std::to_string(o.gates_bypassed),
                  o.function_restored ? "1" : "0",
                  o.watermark_still_wired ? "1" : "0"});
  }

  std::cout
      << "\nreading: against the naive embedding the attacker finds the "
         "high-fanout WMARK net, bypasses every modulation AND, restores "
         "original behaviour and silences the watermark. The diversified "
         "embedding (each ICG driven from a different WGC stage) removes "
         "the fan-out signature; the attack finds nothing, the watermark "
         "keeps gating the clocks, and the vendor detects with the "
         "composite model vector (tests: DiversifiedModel.*)\n";
  return 0;
}
