// Ablation: detection vs measurement noise. Sweeps the oscilloscope
// front-end noise to find the crossover where the watermark sinks below
// the CPA noise floor at the paper's 300k-cycle budget. Each noise
// level runs --reps seeded repetitions through the batched SoA
// acquisition path (Scenario::run_batch) with the sweeps served by one
// shared cpa::SpectrumEngine — the fig6-style study machinery at every
// point of the sweep.
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "cpa/detector.h"
#include "cpa/spectrum_engine.h"
#include "sim/scenario.h"
#include "util/csv.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.reps = 4, .cycles = 150000});
  cli.reject_unknown();
  const std::size_t cycles = cli.cycles();
  const std::size_t reps = cli.reps();
  bench::print_header("abl_noise_sweep — rho vs scope noise (" +
                          std::to_string(reps) + " reps/point)",
                      "stress test of paper Sec. III-IV detection");

  util::CsvWriter csv(cli.out_file("abl_noise_sweep.csv"));
  csv.text_row({"scope_noise_mv", "mean_peak_rho", "mean_peak_z",
                "detected", "reps"});

  const cpa::DetectorPolicy policy;
  const cpa::Detector detector(policy);
  std::cout << "\n" << std::setw(16) << "scope noise[mV]" << std::setw(12)
            << "peak rho" << std::setw(10) << "z" << std::setw(10)
            << "detected" << "\n";
  for (const double noise_mv :
       {1.0, 2.0, 4.0, 6.0, 9.0, 14.0, 20.0, 30.0, 45.0}) {
    auto cfg = sim::chip1_default();
    cfg.trace_cycles = cycles;
    if (cli.seed() != 0) cfg.seed = cli.seed();
    cfg.acquisition.scope.noise_v_rms = noise_mv * 1e-3;
    const sim::Scenario scenario(cfg);
    const cpa::SpectrumEngine engine(scenario.model_pattern());
    const auto captures = scenario.run_batch(0, reps);
    double sum_rho = 0.0;
    double sum_z = 0.0;
    std::size_t detections = 0;
    for (const auto& capture : captures) {
      const cpa::SpreadSpectrum ss =
          engine.sweep(capture.acquisition.per_cycle_power_w, policy.guard);
      sum_rho += ss.peak_value;
      sum_z += ss.peak_z;
      if (detector.decide(ss).detected) ++detections;
    }
    const double mean_rho = sum_rho / static_cast<double>(reps);
    const double mean_z = sum_z / static_cast<double>(reps);
    std::cout << std::setw(16) << std::fixed << std::setprecision(1)
              << noise_mv << std::setw(12) << std::setprecision(4)
              << mean_rho << std::setw(10) << std::setprecision(1) << mean_z
              << std::setw(8) << detections << "/" << reps << "\n";
    csv.text_row({util::format_double(noise_mv, 4),
                  util::format_double(mean_rho, 6),
                  util::format_double(mean_z, 6),
                  std::to_string(detections), std::to_string(reps)});
  }
  std::cout << "\n(rho scales ~1/noise; detection fails once the peak's z "
               "drops below the detector threshold — more cycles buy back "
               "margin, cf. abl_trace_length)\n";
  return 0;
}
