// Ablation: detection vs measurement noise. Sweeps the oscilloscope
// front-end noise to find the crossover where the watermark sinks below
// the CPA noise floor at the paper's 300k-cycle budget.
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "detect/session.h"
#include "util/csv.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.cycles = 150000});
  cli.reject_unknown();
  const std::size_t cycles = cli.cycles();
  bench::print_header("abl_noise_sweep — rho vs scope noise",
                      "stress test of paper Sec. III-IV detection");

  util::CsvWriter csv(cli.out_file("abl_noise_sweep.csv"));
  csv.text_row({"scope_noise_mv", "peak_rho", "peak_z", "detected"});

  std::cout << "\n" << std::setw(16) << "scope noise[mV]" << std::setw(12)
            << "peak rho" << std::setw(10) << "z" << std::setw(10)
            << "detected" << "\n";
  for (const double noise_mv :
       {1.0, 2.0, 4.0, 6.0, 9.0, 14.0, 20.0, 30.0, 45.0}) {
    auto cfg = sim::chip1_default();
    cfg.trace_cycles = cycles;
    cfg.acquisition.scope.noise_v_rms = noise_mv * 1e-3;
    sim::Scenario scenario(cfg);
    const detect::Report exp = detect::Session().run(scenario, 0);
    const auto& ss = exp.detection.spectrum;
    std::cout << std::setw(16) << std::fixed << std::setprecision(1)
              << noise_mv << std::setw(12) << std::setprecision(4)
              << ss.peak_value << std::setw(10) << std::setprecision(1)
              << ss.peak_z << std::setw(10)
              << (exp.detection.detected ? "yes" : "no") << "\n";
    csv.text_row({util::format_double(noise_mv, 4),
                  util::format_double(ss.peak_value, 6),
                  util::format_double(ss.peak_z, 6),
                  exp.detection.detected ? "1" : "0"});
  }
  std::cout << "\n(rho scales ~1/noise; detection fails once the peak's z "
               "drops below the detector threshold — more cycles buy back "
               "margin, cf. abl_trace_length)\n";
  return 0;
}
