// Ablation: duty-cycled watermark (the paper's synchronization remark —
// a watermark that only modulates part of the time, e.g. within idle
// windows or a power budget). The effective CPA correlation shrinks
// roughly linearly with the duty cycle; this sweep shows how much duty a
// given cycle budget can afford.
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "cpa/detector.h"
#include "sim/scenario.h"
#include "util/csv.h"
#include "watermark/scheduler.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.cycles = 300000});
  cli.reject_unknown();
  const std::size_t cycles = cli.cycles();
  bench::print_header("abl_duty_cycle — partially active watermark",
                      "extends paper Sec. II synchronization remark");

  auto cfg = sim::chip1_default();
  cfg.trace_cycles = cycles;
  sim::Scenario scenario(cfg);

  util::CsvWriter csv(cli.out_file("abl_duty_cycle.csv"));
  csv.text_row({"duty", "peak_rho", "peak_z", "detected"});

  std::cout << "\n" << std::setw(8) << "duty" << std::setw(12)
            << "peak rho" << std::setw(10) << "z" << std::setw(10)
            << "detected" << "\n";
  const cpa::Detector detector;
  for (const double duty : {1.0, 0.75, 0.5, 0.35, 0.25, 0.15, 0.08}) {
    auto r = scenario.run(0);

    watermark::ScheduleConfig sched;
    sched.policy = watermark::SchedulePolicy::kDutyCycled;
    sched.window_cycles = 4096;  // coprime-ish with the 4095 period
    sched.duty = duty;
    const auto enabled = watermark::build_schedule(sched, cycles);
    const auto gated = watermark::apply_schedule(
        std::vector<double>(r.watermark_power.values()), enabled,
        scenario.characterization().leakage_w);

    power::PowerTrace total = r.background_power;
    total += power::PowerTrace(gated, total.clock_hz(), "wm-scheduled");
    measure::AcquisitionConfig acq = cfg.acquisition;
    acq.noise_seed = 0xD07 + static_cast<std::uint64_t>(duty * 1000);
    const auto y = measure::AcquisitionChain(acq).measure(total);

    const auto verdict =
        detector.detect(y.per_cycle_power_w, r.pattern);
    const auto& ss = verdict.spectrum;
    std::cout << std::setw(8) << std::fixed << std::setprecision(2) << duty
              << std::setw(12) << std::setprecision(4) << ss.peak_value
              << std::setw(10) << std::setprecision(1) << ss.peak_z
              << std::setw(10) << (verdict.detected ? "yes" : "no")
              << "\n";
    csv.text_row({util::format_double(duty, 4),
                  util::format_double(ss.peak_value, 6),
                  util::format_double(ss.peak_z, 6),
                  verdict.detected ? "1" : "0"});
  }
  std::cout << "\n(rho scales ~linearly with duty; with the paper's 300k-"
               "cycle budget the watermark tolerates substantial off-time "
               "before the peak sinks into the noise floor — extend the "
               "capture to win it back)\n";
  return 0;
}
