// Ablation: modulated block size vs detection. The paper notes "the size
// of the IP module must be significant to generate strong enough
// watermark power"; this sweep quantifies it by shrinking the gated
// register bank from 1024 down to 32 registers.
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "detect/session.h"
#include "util/csv.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.cycles = 300000});
  cli.reject_unknown();
  const std::size_t cycles = cli.cycles();
  bench::print_header("abl_block_size — rho vs modulated registers",
                      "quantifies paper Sec. II sizing remark");

  util::CsvWriter csv(cli.out_file("abl_block_size.csv"));
  csv.text_row({"registers", "wm_active_mw", "peak_rho", "peak_z",
                "detected"});

  std::cout << "\n" << std::setw(11) << "registers" << std::setw(14)
            << "wm power[mW]" << std::setw(12) << "peak rho"
            << std::setw(10) << "z" << std::setw(10) << "detected" << "\n";
  for (const std::size_t words : {32u, 16u, 8u, 4u, 2u, 1u}) {
    auto cfg = sim::chip1_default();
    cfg.trace_cycles = cycles;
    cfg.watermark.words = words;
    sim::Scenario scenario(cfg);
    const detect::Report exp = detect::Session().run(scenario, 0);
    const auto& ss = exp.detection.spectrum;
    const double amp = scenario.characterization().mean_active_w;
    std::cout << std::setw(11) << words * 32 << std::setw(14) << std::fixed
              << std::setprecision(3) << amp * 1e3 << std::setw(12)
              << std::setprecision(4) << ss.peak_value << std::setw(10)
              << std::setprecision(1) << ss.peak_z << std::setw(10)
              << (exp.detection.detected ? "yes" : "no") << "\n";
    csv.text_row({std::to_string(words * 32),
                  util::format_double(amp * 1e3, 6),
                  util::format_double(ss.peak_value, 6),
                  util::format_double(ss.peak_z, 6),
                  exp.detection.detected ? "1" : "0"});
  }
  std::cout << "\n(rho scales linearly with the modulated clock-tree size; "
               "the watermark power budget can be tailored to the system, "
               "as the paper's Sec. V notes)\n";
  return 0;
}
