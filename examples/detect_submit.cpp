// CLI client for a running detect_serve daemon. Submits one detection
// job over the binary protocol, waits for the verdict, and prints the
// wire summary. The payload is either a trace file the *client* reads
// and ships inline as a CMTRACE2 block (--file, with --pattern holding
// one period of the expected watermark) or a scenario reference the
// server synthesises (--scenario-chip, using the simulator's pattern).
//
//   submit a file      ./detect_submit --port=P --file=cap.cmtrace \
//                          --pattern=period.csv [--blind] [--stream]
//   submit a scenario  ./detect_submit --port=P --scenario-chip=1 \
//                          [--cycles=300000] [--seed=1] [--no-watermark]
//   cancel / stop      ./detect_submit --port=P --cancel=ID
//                      ./detect_submit --port=P --shutdown
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "measure/trace_io.h"
#include "serve/client.h"
#include "util/args.h"

using namespace clockmark;

namespace {

const char* status_name(serve::JobStatus status) {
  switch (status) {
    case serve::JobStatus::kQueued: return "queued";
    case serve::JobStatus::kRunning: return "running";
    case serve::JobStatus::kDone: return "done";
    case serve::JobStatus::kCancelled: return "cancelled";
    case serve::JobStatus::kFailed: return "failed";
    case serve::JobStatus::kRejected: return "rejected";
  }
  return "?";
}

serve::JobPriority parse_priority(const std::string& name) {
  if (name == "high") return serve::JobPriority::kHigh;
  if (name == "low") return serve::JobPriority::kLow;
  if (name == "normal") return serve::JobPriority::kNormal;
  std::cerr << "error: --priority must be high, normal or low (got '"
            << name << "')\n";
  std::exit(2);
}

void print_result(const serve::WireResult& r) {
  std::cout << "job " << r.id << " [" << r.tenant << "] "
            << status_name(r.status) << "\n";
  if (r.status == serve::JobStatus::kDone) {
    std::cout << "  verdict:   " << (r.detected ? "DETECTED" : "not detected")
              << " (confidence " << r.confidence << ")\n"
              << "  reason:    " << r.reason << "\n"
              << "  cycles:    " << r.cycles << ", peak rotation "
              << r.peak_rotation << ", peak z " << r.peak_z << "\n";
    if (r.sync.has_value()) {
      std::cout << "  sync:      " << (r.sync->locked ? "locked" : "no lock")
                << ", offset " << r.sync->total_offset_cycles
                << " cycles, ratio " << r.sync->ratio << ", lock z "
                << r.sync->peak_z << "\n";
    }
  } else if (!r.error.empty()) {
    std::cout << "  error:     " << r.error << "\n";
  }
  std::cout << "  timing:    queued " << r.queue_s << "s, ran " << r.run_s
            << "s\n"
            << "  caches:    scenario " << (r.scenario_hit ? "hit" : "miss")
            << ", engine " << (r.engine_hit ? "hit" : "miss")
            << " (broker " << r.broker_hits << "/"
            << (r.broker_hits + r.broker_misses) << " hits, engines "
            << r.engine_hits << "/" << (r.engine_hits + r.engine_misses)
            << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::string host = args.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.get_int("port", 0));
  if (port == 0) {
    std::cerr << "error: --port=P (from detect_serve's startup line) is "
                 "required\n";
    return 2;
  }

  try {
    serve::TcpClient client(host, port);

    if (args.has("shutdown")) {
      args.reject_unknown();
      client.shutdown_server();
      std::cout << "daemon at " << host << ":" << port
                << " acknowledged shutdown\n";
      return 0;
    }
    if (const std::int64_t id = args.get_int("cancel", 0); id != 0) {
      args.reject_unknown();
      const bool accepted =
          client.cancel(static_cast<std::uint64_t>(id));
      std::cout << "cancel " << id << ": "
                << (accepted ? "accepted" : "unknown or already terminal")
                << "\n";
      return accepted ? 0 : 1;
    }

    serve::JobSpec spec;
    spec.tenant = args.get("tenant", "cli");
    spec.priority = parse_priority(args.get("priority", "normal"));
    spec.mode = args.has("stream") ? serve::JobMode::kStream
                                   : serve::JobMode::kBatch;
    spec.max_cycles =
        static_cast<std::size_t>(args.get_int("max-cycles", 0));
    if (args.has("blind")) spec.request.sync = sync::SyncPolicy::kBlind;

    const std::string file = args.get("file", "");
    const std::int64_t chip = args.get_int("scenario-chip", 0);
    if (!file.empty()) {
      const std::string pattern_path = args.get("pattern", "");
      if (pattern_path.empty()) {
        std::cerr << "error: --file needs --pattern=PATH (one period of "
                     "the expected watermark, CSV or CMTRACE)\n";
        return 2;
      }
      // Ship the capture inline: the wire frame carries the same
      // CMTRACE2 block the file format uses, metadata included.
      measure::TraceMeta meta;
      spec.trace = measure::read_trace(file, &meta);
      spec.trace_meta = meta;
      spec.pattern = measure::read_trace(pattern_path);
    } else if (chip == 1 || chip == 2) {
      spec.scenario = serve::ScenarioRef{};
      spec.scenario->chip = static_cast<int>(chip);
      spec.scenario->trace_cycles =
          static_cast<std::size_t>(args.get_int("cycles", 300000));
      spec.scenario->seed =
          static_cast<std::uint64_t>(args.get_int("seed", 1));
      spec.scenario->repetition =
          static_cast<std::size_t>(args.get_int("repetition", 0));
      spec.scenario->watermark_active = !args.has("no-watermark");
    } else {
      std::cerr << "error: need a payload — --file=PATH or "
                   "--scenario-chip=1|2\n";
      return 2;
    }
    args.reject_unknown();

    const serve::SubmitOutcome outcome = client.submit(spec);
    if (!outcome.accepted()) {
      std::cout << "rejected: " << outcome.rejected->error << "\n";
      return 1;
    }
    std::cout << "submitted as job " << outcome.id << ", waiting...\n";
    const serve::WireResult result = client.wait(outcome.id);
    print_result(result);
    return result.status == serve::JobStatus::kDone ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
