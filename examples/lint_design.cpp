// Design-rule lint driver: builds every watermark embedding the repo can
// construct (no simulation) and runs the cm_lint rule catalog over it.
//
//   lint_design                      # chip/embedding presets, text report
//   lint_design --designs=all        # presets + the removable baseline
//   lint_design --soc=soc.yaml       # lint a user-described clock tree
//   lint_design --sweep              # add a WGC key sweep
//   lint_design --json               # cm-lint-1 JSON document on stdout
//   lint_design --rules=wgc-primitivity,sequence-balance
//   lint_design --severity-floor=warning
//   lint_design --list-rules
//
// Exits 1 when any error-severity finding survives (CI gate), 2 on bad
// usage. The "presets" group is expected to lint clean; the stand-alone
// load-circuit baseline is expected to fail (paper Sec. VI).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/analyzer.h"
#include "lint/design.h"
#include "lint/report.h"
#include "lint/rule.h"
#include "sequence/gold.h"
#include "sim/scenario.h"
#include "socdesc/elaborate.h"
#include "socdesc/parser.h"
#include "util/args.h"
#include "wgc/wgc.h"

namespace {

using namespace clockmark;

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<lint::Design> build_presets() {
  std::vector<lint::Design> designs;
  designs.push_back(
      lint::design_from_scenario_config("chip1", sim::chip1_default()));
  designs.push_back(
      lint::design_from_scenario_config("chip2", sim::chip2_default()));
  designs.push_back(lint::design_embedded_demo("embedded_ip", {}));
  designs.push_back(lint::design_diversified_demo("diversified_ip", {}));
  const sequence::PreferredPair pair = sequence::preferred_pair(7);
  wgc::WgcConfig key_a{wgc::WgcMode::kLfsr, 7, pair.taps_a, 0x55};
  wgc::WgcConfig key_b{wgc::WgcMode::kLfsr, 7, pair.taps_b, 0x2A};
  designs.push_back(
      lint::design_dual_embedded_demo("dual_ip", key_a, key_b));
  return designs;
}

std::vector<lint::Design> build_sweep() {
  std::vector<lint::Design> designs;
  for (const unsigned width : {8u, 12u, 16u}) {
    wgc::WgcConfig key{wgc::WgcMode::kLfsr, width, 0, 0x1};
    designs.push_back(lint::design_embedded_demo(
        "sweep_lfsr_w" + std::to_string(width), key));
  }
  wgc::WgcConfig circular{wgc::WgcMode::kCircular, 12, 0, 0xAAA};
  designs.push_back(
      lint::design_embedded_demo("sweep_circular_w12", circular));
  return designs;
}

void list_rules(const lint::RuleRegistry& registry) {
  for (const lint::Rule* rule : registry.rules()) {
    const lint::RuleInfo& info = rule->info();
    std::cout << info.id << " (" << info.paper_ref << "): " << info.title
              << "\n    " << info.description << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const std::string soc_path = args.get("soc", "");
  // With --soc and no explicit --designs, lint just the described SoC.
  const std::string group =
      args.get("designs", soc_path.empty() ? "presets" : "none");
  const bool sweep = args.get_bool("sweep", false);
  const bool json = args.has("json");
  const std::string out_path = args.get("out", "");
  const std::string rules_csv = args.get("rules", "");
  const bool quiet = args.get_bool("quiet", false);
  const std::string floor = args.get("severity-floor", "");
  const bool show_rules = args.get_bool("list-rules", false);
  args.reject_unknown();
  args.reject_unknown_value("designs", group,
                            {"presets", "load_circuit", "all", "none"});
  if (!floor.empty()) {
    args.reject_unknown_value("severity-floor", floor,
                              {"note", "warning", "error"});
  }

  const lint::RuleRegistry registry = lint::builtin_rules();
  if (show_rules) {
    list_rules(registry);
    return 0;
  }

  std::vector<lint::Design> designs;
  if (group == "presets" || group == "all") {
    designs = build_presets();
  }
  if (group == "load_circuit" || group == "all") {
    designs.push_back(lint::design_load_circuit_demo("load_circuit_ip", {}));
  }
  if (sweep) {
    for (lint::Design& d : build_sweep()) designs.push_back(std::move(d));
  }
  if (!soc_path.empty()) {
    try {
      const socdesc::SocDescription soc =
          socdesc::parse_description_file(soc_path);
      for (const socdesc::ClockController& controller : soc.controllers) {
        designs.push_back(std::move(socdesc::elaborate(controller).design));
      }
    } catch (const std::exception& e) {
      std::cerr << "error: --soc: " << e.what() << "\n";
      return 2;
    }
  }
  if (designs.empty()) {
    std::cerr << "error: nothing to lint (--designs=none without --soc)\n";
    return 2;
  }

  lint::AnalyzerOptions options;
  options.enabled_rules = split_csv(rules_csv);
  if (quiet) options.min_severity = lint::Severity::kWarning;
  if (floor == "note") options.min_severity = lint::Severity::kInfo;
  if (floor == "warning") options.min_severity = lint::Severity::kWarning;
  if (floor == "error") options.min_severity = lint::Severity::kError;

  std::vector<lint::LintReport> reports;
  try {
    const lint::Analyzer analyzer(registry, options);
    reports.reserve(designs.size());
    for (const lint::Design& design : designs) {
      reports.push_back(analyzer.run(design));
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::cerr << "error: cannot open --out file '" << out_path << "'\n";
      return 2;
    }
  }
  std::ostream& os = out_path.empty() ? std::cout : file;

  std::size_t errors = 0;
  for (const lint::LintReport& report : reports) {
    errors += report.counts.errors;
  }
  if (json) {
    lint::JsonReporter reporter;
    reporter.write_all(reports, os);
  } else {
    lint::TextReporter reporter({/*hints=*/!quiet});
    reporter.write_all(reports, os);
    os << (errors == 0 ? "lint clean: " : "lint FAILED: ") << errors
       << " error(s) across " << reports.size() << " design(s)\n";
  }
  return errors == 0 ? 0 : 1;
}
