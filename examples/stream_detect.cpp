// Online detection walkthrough: chip I's Dhrystone trace streamed
// through the acquisition → bounded queue → online CPA pipeline, decided
// mid-stream, then compared against the batch detector over the full
// trace. Both paths go through the detect::Session facade — the same
// Request drives the streamed and the materialised run. The headline
// numbers: the cycle count at which the streaming decision fired, and
// that running to the end reproduces the batch spread spectrum bit for
// bit.
//
//   $ ./stream_detect [--cycles=300000] [--chunk=4096] [--threads=0]
//                     [--no-early-stop]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "detect/session.h"
#include "runtime/executor.h"
#include "util/args.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  sim::ScenarioConfig config = sim::chip1_default();
  config.trace_cycles =
      static_cast<std::size_t>(args.get_int("cycles", 300000));
  const auto chunk_cycles =
      static_cast<std::size_t>(args.get_int("chunk", 4096));
  runtime::Executor executor(
      static_cast<std::size_t>(args.get_int("threads", 0)));

  detect::Request request;
  request.streaming.chunk_cycles = chunk_cycles;
  request.streaming.early_stop = !args.has("no-early-stop");
  args.reject_unknown();

  const sim::Scenario scenario(config);
  std::cout << "chip I / Dhrystone-like workload, " << config.trace_cycles
            << " cycles, streamed in " << chunk_cycles
            << "-cycle chunks\n\n";

  // Streaming: chunks come straight out of the chunked synthesis +
  // acquisition path; no full trace is ever materialised.
  stream::ScenarioSource source(scenario, /*repetition=*/0, chunk_cycles);
  const detect::Session session(request, source.pattern());
  const detect::Report streamed = session.run(source, &executor);
  const stream::StreamReport& report = *streamed.stream;

  std::cout << "streaming: " << (streamed.detected ? "DETECTED"
                                                   : "not detected");
  if (report.decision.decided) {
    std::cout << " after " << report.decision.decision_cycles << " of "
              << config.trace_cycles << " cycles ("
              << 100.0 * static_cast<double>(report.decision.decision_cycles) /
                     static_cast<double>(config.trace_cycles)
              << "% of the trace, " << report.decision.evaluations
              << " evaluations)";
  } else {
    std::cout << " (full trace, " << report.decision.cycles << " cycles)";
  }
  std::cout << "\n  " << streamed.detection.reason << "\n"
            << "  chunks " << report.chunks_consumed << "/"
            << report.chunks_produced
            << " consumed/produced, queue high-water "
            << report.queue.high_water << "/" << report.queue.capacity
            << ", peak buffered " << report.peak_buffered_bytes
            << " bytes\n\n";

  // Batch reference: the same Session deciding over the fully
  // materialised trace (what every other example does).
  const detect::Report batch = session.run(scenario, /*repetition=*/0);
  std::cout << "batch:     "
            << (batch.detected ? "DETECTED" : "not detected")
            << " on the full " << config.trace_cycles << "-cycle trace\n"
            << "  " << batch.detection.reason << "\n\n";

  // When the stream ran to the end (early stop off or never fired), the
  // two spread spectra agree bit for bit — same decision, same peak.
  const auto& s = streamed.detection.spectrum;
  const auto& b = batch.detection.spectrum;
  if (!report.decision.decided) {
    const bool identical = s.rho == b.rho && s.peak_rotation == b.peak_rotation;
    std::cout << "full-stream spectrum vs batch: "
              << (identical ? "bit-identical" : "MISMATCH") << "\n";
    if (!identical) return 2;
  } else {
    std::cout << "early decision peak at rotation " << s.peak_rotation
              << " (batch peak " << b.peak_rotation << ", expected "
              << source.true_rotation() << ")\n";
  }
  return streamed.detected == batch.detected ? 0 : 1;
}
