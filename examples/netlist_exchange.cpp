// Soft-IP exchange flow: the vendor builds the watermarked IP, serialises
// it as a text netlist (the deliverable), the integrator parses it back,
// and both sides verify: structural equality, identical gate-level
// behaviour, identical power characterisation — then the integrator's
// RTL-inspection tooling (Section VI) finds nothing removable.
//
//   $ ./netlist_exchange [--out=/tmp/ip.netlist]
#include <fstream>
#include <iostream>

#include "attack/analysis.h"
#include "power/estimator.h"
#include "rtl/netlist_io.h"
#include "rtl/simulator.h"
#include "util/args.h"
#include "watermark/embedder.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::string path = args.get("out", "ip_deliverable.netlist");
  args.reject_unknown();

  // ---- vendor side -------------------------------------------------
  rtl::Netlist vendor_nl;
  const rtl::NetId clk = vendor_nl.add_net("clk");
  const auto ip = watermark::build_demo_ip_block(vendor_nl, "ip", clk,
                                                 {4, 32});
  wgc::WgcConfig key;
  key.width = 12;
  key.seed = 0x2a7;
  watermark::embed_clock_modulation(vendor_nl, "ip/wgc", clk, key,
                                    ip.icgs);
  {
    std::ofstream out(path);
    rtl::write_netlist(out, vendor_nl);
  }
  std::cout << "[vendor] wrote " << path << ": " << vendor_nl.cell_count()
            << " cells, " << vendor_nl.register_count()
            << " registers (watermark adds only "
            << vendor_nl.register_count("ip/wgc") << ")\n";

  // ---- integrator side ----------------------------------------------
  std::ifstream in(path);
  rtl::Netlist integ_nl = rtl::read_netlist(in);
  std::cout << "[integrator] parsed back: structurally equal = "
            << (rtl::structurally_equal(vendor_nl, integ_nl) ? "yes"
                                                             : "NO")
            << "\n";

  // Behavioural equivalence check over a window.
  rtl::Simulator a(vendor_nl);
  a.set_clock_source(clk);
  rtl::Simulator b(integ_nl);
  b.set_clock_source(*integ_nl.find_net("clk"));
  const rtl::NetId out_b = *integ_nl.find_net(
      vendor_nl.net_name(ip.data_out));
  std::size_t mismatches = 0;
  for (int i = 0; i < 512; ++i) {
    a.step();
    b.step();
    if (a.net_value(ip.data_out) != b.net_value(out_b)) ++mismatches;
  }
  std::cout << "[integrator] gate-level equivalence over 512 cycles: "
            << mismatches << " mismatches\n";

  // Power characterisation matches too (the integrator's signoff).
  const power::PowerEstimator est_a(vendor_nl, power::tsmc65lp_like());
  const power::PowerEstimator est_b(integ_nl, power::tsmc65lp_like());
  std::cout << "[integrator] leakage signoff: vendor "
            << est_a.leakage_power() * 1e6 << " uW vs parsed "
            << est_b.leakage_power() * 1e6 << " uW\n";

  // And the attacker's tooling finds nothing to strip.
  const auto suspicious = attack::find_standalone_circuits(integ_nl);
  std::cout << "[attacker] stand-alone circuit scan on the deliverable: "
            << suspicious.size() << " found — the watermark is invisible\n";
  return mismatches == 0 ? 0 : 1;
}
