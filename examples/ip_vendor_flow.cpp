// The IP-vendor flow, start to finish: the scenario the paper's
// introduction motivates. An IP vendor ships a soft IP block with an
// embedded clock-modulation watermark; later, they audit a finished
// product from the outside — supply current only, no access to ports or
// internals — and prove their IP is inside.
//
//   $ ./ip_vendor_flow [--cycles=120000] [--pirate]
//
// --pirate simulates a product that does NOT contain the vendor's IP
// (same SoC, no watermark): the audit must come back negative.
#include <iostream>

#include "cpa/detector.h"
#include "cpu/programs.h"
#include "measure/acquisition.h"
#include "sim/scenario.h"
#include "util/args.h"
#include "wgc/wgc.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto cycles =
      static_cast<std::size_t>(args.get_int("cycles", 120000));
  const bool pirate = args.has("pirate");
  args.reject_unknown();

  // ------------------------------------------------------------------
  // Design time (vendor side): pick a secret watermark key — LFSR width,
  // polynomial and seed. Only the vendor knows it.
  // ------------------------------------------------------------------
  wgc::WgcConfig key;
  key.width = 12;
  key.seed = 0x6b5;  // the vendor's secret
  std::cout << "[vendor] watermark key: " << key.width
            << "-bit LFSR, taps=0x" << std::hex << key.effective_taps()
            << ", seed=0x" << key.seed << std::dec << "\n";

  // The RTL deliverable: IP block + WGC wired into its clock gates. For
  // the audit model below we use the scenario abstraction, which owns
  // exactly this construction (gate-level, characterised).
  sim::ScenarioConfig product = sim::chip1_default();
  product.watermark.wgc = key;
  product.trace_cycles = cycles;
  product.phase_offset.reset();  // the vendor can't control the phase
  product.watermark_active = !pirate;
  product.seed = 0xFEED;

  // ------------------------------------------------------------------
  // Audit time (lab side): buy the product, put it on a test board,
  // measure the supply current, run CPA with the secret key's sequence.
  // ------------------------------------------------------------------
  std::cout << "[lab] measuring " << cycles
            << " clock cycles of supply current (500 MS/s, 270 mOhm "
               "shunt)...\n";
  const sim::Scenario device(product);
  const auto capture = device.run(/*repetition=*/1);

  std::cout << "[lab] device mean power: "
            << capture.acquisition.mean_power_w * 1e3 << " mW\n";

  // Regenerate the expected WMARK sequence from the key alone.
  wgc::WgcSequence expected(key);
  const auto pattern =
      cpa::to_model_pattern(expected.one_period());

  const cpa::Detector detector;
  const auto verdict =
      detector.detect(capture.acquisition.per_cycle_power_w, pattern);
  std::cout << "[lab] " << verdict.reason << "\n";

  if (verdict.detected) {
    std::cout << "[vendor] AUDIT POSITIVE: our IP is in this product "
                 "(correlation peak at rotation "
              << verdict.spectrum.peak_rotation
              << ") — grounds to escalate to de-encapsulation / legal.\n";
  } else {
    std::cout << "[vendor] audit negative: no trace of our watermark in "
                 "this product.\n";
  }

  // Exit code communicates whether the verdict matched reality.
  const bool correct = verdict.detected == !pirate;
  if (!correct) std::cout << "!!! verdict does not match ground truth\n";
  return correct ? 0 : 1;
}
