// The detection daemon: a DetectionService behind a ServiceHost, serving
// the length-prefixed binary protocol on a TCP port until a client sends
// kShutdown. Pair it with detect_submit, or run --selftest for the
// self-contained smoke tier-1 uses: the daemon comes up on an ephemeral
// port, a TcpClient submits a batch chip-I scenario job and a blind-sync
// job over a desynced CMTRACE2 file, verifies both verdicts, cancels a
// third still-queued job, asks for shutdown, and the process exits 0
// only if every step behaved.
//
//   $ ./detect_serve [--port=0] [--workers=1] [--queue=64] [--chunk=4096]
//                    [--threads=0] [--selftest]
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "attack/desync.h"
#include "measure/trace_io.h"
#include "runtime/executor.h"
#include "serve/client.h"
#include "serve/host.h"
#include "serve/service.h"
#include "sim/scenario.h"
#include "util/args.h"

using namespace clockmark;

namespace {

const char* status_name(serve::JobStatus status) {
  switch (status) {
    case serve::JobStatus::kQueued: return "queued";
    case serve::JobStatus::kRunning: return "running";
    case serve::JobStatus::kDone: return "done";
    case serve::JobStatus::kCancelled: return "cancelled";
    case serve::JobStatus::kFailed: return "failed";
    case serve::JobStatus::kRejected: return "rejected";
  }
  return "?";
}

void print_result(const char* label, const serve::WireResult& r) {
  std::cout << "  " << label << ": job " << r.id << " [" << r.tenant << "] "
            << status_name(r.status);
  if (r.status == serve::JobStatus::kDone) {
    std::cout << " — " << (r.detected ? "DETECTED" : "not detected")
              << " over " << r.cycles << " cycles (peak z " << r.peak_z
              << ", queue " << r.queue_s << "s, run " << r.run_s << "s"
              << (r.scenario_hit ? ", scenario cache hit" : "")
              << (r.engine_hit ? ", engine cache hit" : "") << ")";
  } else if (!r.error.empty()) {
    std::cout << " — " << r.error;
  }
  std::cout << "\n";
}

// The tier-1 smoke: everything a deployment does, in one process.
int selftest(serve::DetectionService& service, runtime::Executor&) {
  serve::ServiceHost host(service, {});  // ephemeral port
  std::cout << "selftest: daemon on 127.0.0.1:" << host.port() << "\n";
  serve::TcpClient client("127.0.0.1", host.port());

  // Job 1 — batch detection on a chip-I scenario reference (the server
  // synthesises and memoizes the trace; the test-suite noise overrides
  // keep the short trace deterministic).
  serve::JobSpec chip1;
  chip1.tenant = "vendor-a";
  chip1.scenario = serve::ScenarioRef{};
  chip1.scenario->chip = 1;
  chip1.scenario->trace_cycles = 20000;
  chip1.scenario->scope_noise_v_rms = 2e-3;
  chip1.scenario->probe_noise_v_rms = 0.5e-3;
  const serve::SubmitOutcome first = client.submit(chip1);
  if (!first.accepted()) {
    std::cerr << "selftest: chip-I submit rejected: "
              << first.rejected->error << "\n";
    return 1;
  }

  // Job 2 — blind sync over a desynced CMTRACE2 file: a watermarked
  // capture shifted 19.7 cycles with no recorded trigger offset, so only
  // the blind lock can realign it.
  sim::ScenarioConfig cfg = sim::chip1_default();
  cfg.trace_cycles = 20000;
  cfg.acquisition.scope.noise_v_rms = 2e-3;
  cfg.acquisition.probe.noise_v_rms = 0.5e-3;
  const sim::Scenario scenario(cfg);
  const auto run = scenario.run(0);
  attack::DesyncAttack attack;
  attack.kind = attack::DesyncKind::kFixedOffset;
  attack.offset_cycles = 19.7;
  const std::vector<double> desynced =
      attack::apply_desync(run.acquisition.per_cycle_power_w, attack);
  const std::string trace_path =
      (std::filesystem::temp_directory_path() / "detect_serve_selftest.cmtrace")
          .string();
  measure::write_trace_binary(trace_path, desynced, measure::TraceMeta{});

  serve::JobSpec blind;
  blind.tenant = "vendor-b";
  blind.pattern = run.pattern;
  blind.trace_file = trace_path;
  blind.request.sync = sync::SyncPolicy::kBlind;
  const serve::SubmitOutcome second = client.submit(blind);
  if (!second.accepted()) {
    std::cerr << "selftest: blind-file submit rejected: "
              << second.rejected->error << "\n";
    return 1;
  }

  // Job 3 — low priority, queued behind the other two (one worker), so
  // the cancel deterministically pulls it out of the queue.
  serve::JobSpec doomed = chip1;
  doomed.tenant = "vendor-c";
  doomed.priority = serve::JobPriority::kLow;
  doomed.scenario->seed = 99;  // distinct work, never executed
  const serve::SubmitOutcome third = client.submit(doomed);
  if (!third.accepted()) {
    std::cerr << "selftest: third submit rejected\n";
    return 1;
  }
  if (!client.cancel(third.id)) {
    std::cerr << "selftest: cancel of queued job " << third.id
              << " not accepted\n";
    return 1;
  }

  const serve::WireResult r1 = client.wait(first.id);
  const serve::WireResult r2 = client.wait(second.id);
  const serve::WireResult r3 = client.wait(third.id);
  print_result("chip-I batch", r1);
  print_result("blind file  ", r2);
  print_result("cancelled   ", r3);
  std::filesystem::remove(trace_path);

  bool ok = true;
  if (r1.status != serve::JobStatus::kDone || !r1.detected) {
    std::cerr << "selftest: chip-I scenario job should detect\n";
    ok = false;
  }
  if (r2.status != serve::JobStatus::kDone || !r2.detected ||
      !r2.sync.has_value() || !r2.sync->locked) {
    std::cerr << "selftest: blind file job should lock and detect\n";
    ok = false;
  }
  if (r3.status != serve::JobStatus::kCancelled) {
    std::cerr << "selftest: cancelled job ended " << status_name(r3.status)
              << ", expected cancelled\n";
    ok = false;
  }

  client.shutdown_server();
  host.wait_for_shutdown();
  host.stop();
  service.shutdown(/*drain_queued=*/true);
  const serve::ServiceStats stats = service.stats();
  std::cout << "selftest: " << stats.completed << " done, "
            << stats.cancelled << " cancelled, queue high-water "
            << stats.queue.high_water << "/" << stats.queue.capacity
            << ", clean shutdown\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  serve::ServiceConfig config;
  config.workers = static_cast<std::size_t>(args.get_int("workers", 1));
  config.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue", 64));
  config.chunk_cycles = static_cast<std::size_t>(args.get_int("chunk", 4096));
  serve::HostConfig host_config;
  host_config.port =
      static_cast<std::uint16_t>(args.get_int("port", 0));
  const bool run_selftest = args.has("selftest");
  runtime::Executor executor(
      static_cast<std::size_t>(args.get_int("threads", 0)));
  config.executor = &executor;
  args.reject_unknown();

  serve::DetectionService service(config);
  if (run_selftest) return selftest(service, executor);

  serve::ServiceHost host(service, host_config);
  std::cout << "cm_serve listening on 127.0.0.1:" << host.port() << " ("
            << config.workers << " worker(s), queue "
            << config.queue_capacity << ")\n"
            << "stop with: detect_submit --port=" << host.port()
            << " --shutdown" << std::endl;  // flush: scripts scrape the port
  host.wait_for_shutdown();
  host.stop();
  service.shutdown(/*drain_queued=*/true);
  std::cout << "cm_serve: drained and stopped\n";
  return 0;
}
