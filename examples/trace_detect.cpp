// Standalone trace auditor: runs CPA watermark detection on a measured
// per-cycle power trace loaded from a CSV/plain-text file (one value per
// line, '#' comments allowed) or a CMTRACE binary written by
// measure::write_trace_* — the tool an IP vendor would point at a scope
// export. The watermark key is given on the command line; alignment
// handling goes through the detect::Session facade.
//
//   $ ./trace_detect --trace=y.csv --width=12 [--taps=0x53] [--seed=1]
//                    [--z=5.5] [--method=fft|folded|naive]
//                    [--sync=triggered|known|blind] [--offset=F]
//
// --sync=triggered (default) trusts the capture alignment, but a
// trigger offset recorded in the file's metadata ("# meta" lines /
// CMTRACE2 header) still gets corrected. --sync=known corrects the
// misalignment given by --offset (or the file metadata); --sync=blind
// runs the coarse-to-fine search and reports what it locked onto.
// --offset=F uses the file-metadata convention: F is how many cycles
// late the capture started (the misalignment, not the correction); the
// tool applies the opposite warp before CPA.
//
// Exit code: 0 = watermark detected, 1 = not detected, 2 = usage error.
#include <iostream>

#include "cpa/confidence.h"
#include "detect/session.h"
#include "measure/trace_io.h"
#include "util/args.h"
#include "util/ascii_chart.h"
#include "util/csv.h"
#include "wgc/wgc.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::string path = args.get("trace", "");
  if (path.empty()) {
    std::cerr << "usage: " << args.program()
              << " --trace=<file> --width=<bits> [--taps=0x..] [--seed=N]"
                 " [--z=5.5] [--method=fft] [--sync=triggered|known|blind]"
                 " [--offset=F]\n";
    return 2;
  }

  wgc::WgcConfig key;
  key.width = static_cast<unsigned>(args.get_int("width", 12));
  key.taps = static_cast<std::uint32_t>(args.get_int("taps", 0));
  key.seed = static_cast<std::uint32_t>(args.get_int("seed", 1));

  detect::Request request;
  request.policy.min_peak_z = args.get_double("z", request.policy.min_peak_z);
  const std::string m = args.get("method", "fft");
  if (m == "folded") request.method = cpa::CorrelationMethod::kFolded;
  if (m == "naive") request.method = cpa::CorrelationMethod::kNaive;

  const std::string sync_mode = args.get("sync", "triggered");
  const double cli_offset = args.get_double("offset", 0.0);
  args.reject_unknown();

  try {
    measure::TraceMeta meta;
    const auto y = measure::read_trace(path, &meta);
    wgc::WgcSequence seq(key);
    if (y.size() < seq.period()) {
      std::cerr << "trace has " << y.size()
                << " cycles but one watermark period is " << seq.period()
                << " — capture longer\n";
      return 2;
    }
    std::cout << "trace: " << y.size() << " cycles from " << path << "\n"
              << "key:   " << key.width << "-bit LFSR, taps=0x" << std::hex
              << key.effective_taps() << ", seed=0x" << key.seed
              << std::dec << " (period " << seq.period() << ")\n";

    if (sync_mode == "blind") {
      request.sync = sync::SyncPolicy::kBlind;
    } else if (sync_mode == "known") {
      request.sync = sync::SyncPolicy::kKnownOffset;
      // --offset / the metadata record the misalignment; the warp is
      // the correction, so negate (see detect::Session::run_file).
      request.known_warp.offset_cycles =
          -(cli_offset != 0.0 ? cli_offset : meta.trigger_offset_cycles);
    } else if (sync_mode == "triggered") {
      // Same upgrade rule as Session::run_file: recorded misalignment
      // beats the trusted-trigger assumption.
      if (meta.trigger_offset_cycles != 0.0) {
        request.sync = sync::SyncPolicy::kKnownOffset;
        request.known_warp.offset_cycles = -meta.trigger_offset_cycles;
        std::cout << "file metadata records trigger offset "
                  << meta.trigger_offset_cycles
                  << " cycles — correcting it before CPA\n";
      }
    } else {
      std::cerr << "unknown --sync mode '" << sync_mode << "'\n";
      return 2;
    }

    const detect::Session session(
        request, cpa::to_model_pattern(seq.one_period()));
    const detect::Report report = session.run(y);
    if (report.sync) {
      std::cout << "sync:  offset " << report.sync->correction.offset_cycles
                << " cycles, ratio " << report.sync->correction.ratio
                << ", drift " << report.sync->correction.drift;
      if (request.sync == sync::SyncPolicy::kBlind) {
        std::cout << " (blind lock "
                  << (report.sync->locked ? "locked" : "NOT locked")
                  << ", peak z " << report.sync->peak_z << ", "
                  << report.sync->evaluations << " evaluations)";
      }
      std::cout << "\n";
    }

    util::ChartOptions opts;
    opts.width = 100;
    opts.height = 10;
    opts.title = "spread spectrum";
    opts.x_label = "rotation";
    std::cout << util::line_chart(report.detection.spectrum.rho, opts);
    std::cout << report.detection.reason << "\n";
    if (report.detected) {
      std::cout << "false-positive probability of this peak: "
                << cpa::false_positive_probability(
                       report.detection.spectrum.peak_z,
                       report.detection.spectrum.rho.size())
                << "\n";
    }
    return report.detected ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
