// Standalone trace auditor: runs CPA watermark detection on a measured
// per-cycle power trace loaded from a CSV/plain-text file (one value per
// line, '#' comments allowed) — the tool an IP vendor would point at a
// scope export. The watermark key is given on the command line.
//
//   $ ./trace_detect --trace=y.csv --width=12 [--taps=0x53] [--seed=1]
//                    [--z=5.5] [--method=fft|folded|naive]
//
// Exit code: 0 = watermark detected, 1 = not detected, 2 = usage error.
#include <iostream>

#include "cpa/confidence.h"
#include "cpa/detector.h"
#include "util/args.h"
#include "util/ascii_chart.h"
#include "util/csv.h"
#include "wgc/wgc.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::string path = args.get("trace", "");
  if (path.empty()) {
    std::cerr << "usage: " << args.program()
              << " --trace=<file> --width=<bits> [--taps=0x..] [--seed=N]"
                 " [--z=5.5] [--method=fft]\n";
    return 2;
  }

  wgc::WgcConfig key;
  key.width = static_cast<unsigned>(args.get_int("width", 12));
  key.taps = static_cast<std::uint32_t>(args.get_int("taps", 0));
  key.seed = static_cast<std::uint32_t>(args.get_int("seed", 1));

  cpa::DetectorPolicy policy;
  policy.min_peak_z = args.get_double("z", policy.min_peak_z);

  cpa::CorrelationMethod method = cpa::CorrelationMethod::kFft;
  const std::string m = args.get("method", "fft");
  if (m == "folded") method = cpa::CorrelationMethod::kFolded;
  if (m == "naive") method = cpa::CorrelationMethod::kNaive;
  args.reject_unknown();

  try {
    const auto y = util::read_series(path);
    wgc::WgcSequence seq(key);
    if (y.size() < seq.period()) {
      std::cerr << "trace has " << y.size()
                << " cycles but one watermark period is " << seq.period()
                << " — capture longer\n";
      return 2;
    }
    std::cout << "trace: " << y.size() << " cycles from " << path << "\n"
              << "key:   " << key.width << "-bit LFSR, taps=0x" << std::hex
              << key.effective_taps() << ", seed=0x" << key.seed
              << std::dec << " (period " << seq.period() << ")\n";

    const cpa::Detector detector(policy);
    const auto result = detector.detect(
        y, cpa::to_model_pattern(seq.one_period()), method);

    util::ChartOptions opts;
    opts.width = 100;
    opts.height = 10;
    opts.title = "spread spectrum";
    opts.x_label = "rotation";
    std::cout << util::line_chart(result.spectrum.rho, opts);
    std::cout << result.reason << "\n";
    if (result.detected) {
      std::cout << "false-positive probability of this peak: "
                << cpa::false_positive_probability(
                       result.spectrum.peak_z, result.spectrum.rho.size())
                << "\n";
    }
    return result.detected ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
