// Chip I walkthrough: the paper's first silicon experiment, end to end,
// with full visibility into every stage — the Dhrystone-like workload
// running on the EM0 core, the watermark block's gate-level power, the
// measurement chain, and the CPA spread spectrum.
//
//   $ ./chip1_dhrystone [--cycles=300000] [--listing]
#include <iostream>

#include "cpu/decoder.h"
#include "cpu/programs.h"
#include "detect/session.h"
#include "util/args.h"
#include "util/ascii_chart.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);

  // The workload: a from-scratch Dhrystone-flavoured benchmark (integer
  // arithmetic, string ops, logic decisions, memory accesses).
  const std::string program = cpu::dhrystone_like_source();
  if (args.has("listing")) {
    const auto assembled = cpu::assemble_program(program);
    std::cout << "--- workload disassembly ---\n"
              << cpu::disassemble(assembled.image) << "\n";
  }

  sim::ScenarioConfig config = sim::chip1_default();
  config.trace_cycles =
      static_cast<std::size_t>(args.get_int("cycles", 300000));
  args.reject_unknown();

  const sim::Scenario scenario(config);
  const auto& ch = scenario.characterization();
  std::cout << "chip I setup (paper Sec. IV):\n"
            << "  watermark: 32 words x 32 registers behind WMARK-gated "
               "ICGs, 12-bit LFSR WGC\n"
            << "  active power " << ch.mean_active_w * 1e3
            << " mW / idle " << ch.mean_idle_w * 1e3 << " mW / leakage "
            << ch.leakage_w * 1e6 << " uW\n"
            << "  scope: 500 MS/s, 8 bit; shunt 270 mOhm; clock 10 MHz "
               "(50 samples per cycle)\n\n";

  const detect::Session session;
  const detect::Report exp = session.run(scenario);

  std::cout << "background (M0 SoC running Dhrystone-like code): "
            << exp.scenario->background_power.average_w() * 1e3
            << " mW mean\n";

  util::ChartOptions opts;
  opts.width = 100;
  opts.height = 14;
  opts.title = "CPA spread spectrum (cf. paper Fig. 5a)";
  opts.x_label = "watermark sequence rotation";
  std::cout << util::line_chart(exp.detection.spectrum.rho, opts);
  std::cout << exp.detection.reason << "\n";
  return exp.detection.detected ? 0 : 1;
}
