// Chip II walkthrough: the paper's second silicon experiment — the same
// M0 SoC sharing the die with a dual-core A5-class subsystem whose cores
// are clocked but idle. The extra background makes the detection harder;
// the watermark is still recovered.
//
//   $ ./chip2_dualcore [--cycles=300000]
#include <iostream>

#include "detect/session.h"
#include "util/args.h"
#include "util/ascii_chart.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);

  sim::ScenarioConfig config = sim::chip2_default();
  config.trace_cycles =
      static_cast<std::size_t>(args.get_int("cycles", 300000));
  args.reject_unknown();

  const sim::Scenario scenario(config);
  const detect::Session session;
  const detect::Report exp = session.run(scenario);

  std::cout << "chip II setup (paper Sec. IV):\n"
            << "  dual A5-class cores: clocked, executing nothing — "
            << 2 * config.a5_core.register_count
            << " registers of idle clock tree + cache housekeeping\n"
            << "  background: "
            << exp.scenario->background_power.average_w() * 1e3
            << " mW (vs ~1.3 mW on chip I) — the significant portion of "
               "background noise the paper mentions\n\n";

  util::ChartOptions opts;
  opts.width = 100;
  opts.height = 14;
  opts.title = "CPA spread spectrum (cf. paper Fig. 5c)";
  opts.x_label = "watermark sequence rotation";
  std::cout << util::line_chart(exp.detection.spectrum.rho, opts);
  std::cout << exp.detection.reason << "\n";

  // Side-by-side with chip I at the same settings.
  sim::ScenarioConfig c1 = sim::chip1_default();
  c1.trace_cycles = config.trace_cycles;
  const sim::Scenario s1(c1);
  const detect::Report e1 = session.run(s1);
  std::cout << "\ncomparison:  chip I peak rho = "
            << e1.detection.spectrum.peak_value
            << "  |  chip II peak rho = "
            << exp.detection.spectrum.peak_value
            << "  (chip II slightly lower, as in the paper)\n";
  return exp.detection.detected ? 0 : 1;
}
