// Removal-attack demo (paper Section VI): play the attacker. Inspect a
// soft-IP netlist for stand-alone circuits, delete what you find, and see
// what breaks — against both watermark architectures.
//
//   $ ./removal_attack [--load_regs=576]
#include <iostream>

#include "attack/analysis.h"
#include "attack/removal.h"
#include "util/args.h"
#include "watermark/embedder.h"
#include "watermark/load_circuit.h"

using namespace clockmark;

namespace {

void attack_design(const std::string& title, rtl::Netlist& nl,
                   rtl::NetId clk, rtl::NetId observe) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "netlist: " << nl.cell_count() << " cells, "
            << nl.register_count() << " registers\n";

  // Step 1: the attacker's RTL inspection — find stand-alone circuits.
  const auto suspicious = attack::find_standalone_circuits(nl);
  std::cout << "stand-alone circuit scan: " << suspicious.size()
            << " suspicious circuit(s)\n";
  for (const auto& sc : suspicious) {
    std::cout << "  -> " << sc.size() << " cells, " << sc.register_count
              << " registers, modules:";
    for (const auto& m : sc.module_paths) std::cout << " " << m;
    std::cout << "\n";
  }

  // Step 2: delete the watermark module (the attacker knows which module
  // they suspect — worst case for the defender).
  const auto victims = attack::cells_under_module(nl, "soc/watermark");
  const auto outcome =
      attack::simulate_removal_attack(nl, victims, clk, observe, 256);
  std::cout << "removal attack: deleted " << outcome.cells_removed
            << " cells\n"
            << "  functional registers left unclocked: "
            << outcome.unclocked_registers << "\n"
            << "  output mismatches: " << outcome.output_mismatch_cycles
            << "/" << outcome.compared_cycles << " cycles\n"
            << "  verdict: "
            << (outcome.functionally_intact()
                    ? "design still works — the watermark was free to "
                      "remove"
                    : "design destroyed — removal is self-defeating")
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto load_regs =
      static_cast<std::size_t>(args.get_int("load_regs", 576));
  args.reject_unknown();
  wgc::WgcConfig wgc_cfg;  // 12-bit LFSR as on the chips

  {
    rtl::Netlist nl;
    const rtl::NetId clk = nl.add_net("clk");
    const auto ip = watermark::build_demo_ip_block(nl, "soc/ip", clk);
    watermark::LoadCircuitConfig lc;
    lc.wgc = wgc_cfg;
    lc.load_registers = load_regs;
    build_load_circuit_watermark(nl, "soc/watermark", clk, lc);
    attack_design("design A: state-of-the-art load-circuit watermark", nl,
                  clk, ip.data_out);
  }
  {
    rtl::Netlist nl;
    const rtl::NetId clk = nl.add_net("clk");
    const auto ip = watermark::build_demo_ip_block(nl, "soc/ip", clk);
    watermark::embed_clock_modulation(nl, "soc/watermark", clk, wgc_cfg,
                                      ip.icgs);
    attack_design("design B: proposed clock-modulation watermark "
                  "(embedded in the IP's clock gates)",
                  nl, clk, ip.data_out);
  }

  std::cout << "\nconclusion (paper Sec. VI): the load circuit is a "
               "stand-alone subcircuit — easily found and freely removed; "
               "the clock-modulation watermark is invisible to the same "
               "analysis and removing it severs the IP's own clocks.\n";
  return 0;
}
