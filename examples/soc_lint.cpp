// Corpus sweep over generated SoC clock-controller descriptions: render
// each one to text, push it back through the strict parser, elaborate
// and lint — the full ingestion path, fanned out on a thread pool.
//
//   soc_lint --count=100 --seed=1          # clean corpus, must lint clean
//   soc_lint --count=32 --defect=glitch-mux  # every design must trip
//   soc_lint --threads=4                   # worker count (0 = hardware)
//   soc_lint --dump=7                      # print design #7's description
//
// Exits 1 when a clean design carries an error-severity finding, when a
// defective design fails to trip its expected rule, or when any design
// throws on the way through parse/elaborate; 2 on bad usage. The summary
// line names the expected rule id so CI can grep for it.
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "lint/analyzer.h"
#include "lint/report.h"
#include "lint/rule.h"
#include "runtime/executor.h"
#include "socdesc/elaborate.h"
#include "socdesc/generator.h"
#include "socdesc/parser.h"
#include "util/args.h"

namespace {

using namespace clockmark;

struct SweepResult {
  std::string name;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  bool fired = false;        ///< expected defect rule seen at error severity
  std::string failure;       ///< exception text, "" when the run survived
  std::string description;   ///< rendered text, kept only for --dump
};

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const auto count = static_cast<std::size_t>(args.get_int("count", 100));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));
  const std::string defect_name = args.get("defect", "none");
  const std::int64_t dump = args.get_int("dump", -1);
  args.reject_unknown();
  args.reject_unknown_value(
      "defect", defect_name,
      {"none", "aliased-domain", "test-bypass", "glitch-mux",
       "key-collision"});
  if (count == 0) {
    std::cerr << "error: --count must be positive\n";
    return 2;
  }
  if (dump >= 0 && static_cast<std::size_t>(dump) >= count) {
    std::cerr << "error: --dump index " << dump << " is outside the sweep"
              << " (count " << count << ")\n";
    return 2;
  }

  const socdesc::DefectKind defect =
      socdesc::parse_defect_kind(defect_name);
  const std::string expected_rule{socdesc::defect_rule_id(defect)};
  const lint::RuleRegistry registry = lint::builtin_rules();
  const lint::Analyzer analyzer(registry);

  runtime::Executor executor(threads);
  const std::vector<SweepResult> results =
      executor.parallel_map<SweepResult>(count, [&](std::size_t i) {
        SweepResult result;
        socdesc::GeneratorOptions options;
        options.seed = seed + i;
        options.defect = defect;
        try {
          const std::string text = socdesc::generate_description(options);
          if (static_cast<std::int64_t>(i) == dump) {
            result.description = text;
          }
          const socdesc::SocDescription soc =
              socdesc::parse_description(text);
          for (const socdesc::ClockController& controller :
               soc.controllers) {
            result.name = controller.name;
            const lint::LintReport report =
                analyzer.run(socdesc::elaborate(controller).design);
            result.errors += report.counts.errors;
            result.warnings += report.counts.warnings;
            for (const lint::Diagnostic& diag : report.diagnostics) {
              if (diag.rule == expected_rule &&
                  diag.severity == lint::Severity::kError) {
                result.fired = true;
              }
            }
          }
        } catch (const std::exception& e) {
          result.failure = e.what();
        }
        return result;
      });

  // Workers finished in whatever order; the report is in seed order.
  std::size_t failures = 0;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepResult& result = results[i];
    const std::string label =
        result.name.empty() ? "seed " + std::to_string(seed + i)
                            : result.name;
    errors += result.errors;
    warnings += result.warnings;
    if (!result.failure.empty()) {
      ++failures;
      std::cout << "[fail] " << label << ": " << result.failure << "\n";
    } else if (defect == socdesc::DefectKind::kNone && result.errors > 0) {
      ++failures;
      std::cout << "[fail] " << label << ": " << result.errors
                << " unexpected error(s)\n";
    } else if (defect != socdesc::DefectKind::kNone && !result.fired) {
      ++failures;
      std::cout << "[fail] " << label << ": expected rule " << expected_rule
                << " did not fire\n";
    }
    if (static_cast<std::int64_t>(i) == dump) {
      std::cout << "--- " << label << " ---\n"
                << result.description << "---\n";
    }
  }

  std::cout << "soc_lint: " << count - failures << "/" << count
            << " design(s) ok, seeds " << seed << ".." << seed + count - 1;
  if (defect == socdesc::DefectKind::kNone) {
    std::cout << ", clean corpus: " << errors << " error(s), " << warnings
              << " warning(s)\n";
  } else {
    std::cout << ", defect " << defect_name << " -> rule " << expected_rule
              << "\n";
  }
  return failures == 0 ? 0 : 1;
}
