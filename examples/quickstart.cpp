// Quickstart: embed a clock-modulation watermark, capture a power trace
// through the measurement chain, and detect it with CPA — the whole paper
// pipeline in ~40 lines of user code.
//
//   $ ./quickstart [--cycles=60000] [--inactive]
#include <iostream>

#include "detect/session.h"
#include "util/args.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);

  // 1. Configure the experiment: chip I of the paper — an M0-class SoC
  //    running a Dhrystone-like workload, with the 1024-register
  //    clock-modulated watermark block and a 12-bit LFSR WGC.
  sim::ScenarioConfig config = sim::chip1_default();
  // The watermark's rho is ~0.02 with the paper-calibrated measurement
  // noise, so the capture needs enough cycles for the CPA noise floor
  // (~1/sqrt(N)) to drop well below it; the paper uses 300,000.
  config.trace_cycles =
      static_cast<std::size_t>(args.get_int("cycles", 200000));
  config.watermark_active = !args.has("inactive");
  args.reject_unknown();

  // 2. Build the scenario. This constructs the watermark at gate level
  //    and characterises its power over one full WMARK period.
  const sim::Scenario scenario(config);
  std::cout << "watermark block: "
            << scenario.watermark().total_registers << " registers, "
            << "active power "
            << scenario.characterization().mean_active_w * 1e3
            << " mW, period " << scenario.characterization().period
            << " cycles\n";

  // 3. Run one capture and the CPA detector through the detection
  //    facade (a default Request = the paper's triggered batch CPA).
  const detect::Session session;
  const detect::Report report = session.run(scenario);

  // 4. Inspect the verdict.
  std::cout << "trace: " << config.trace_cycles << " cycles, measured mean "
            << report.scenario->acquisition.mean_power_w * 1e3 << " mW\n";
  std::cout << report.detection.reason << "\n";
  std::cout << (report.detected ? "=> watermark present"
                                : "=> no watermark found")
            << "\n";
  return 0;
}
