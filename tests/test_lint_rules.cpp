// One positive (fires) and one negative (clean) case per design rule,
// plus analyzer option handling. Sequence/acquisition rules run against
// a minimal netlist-free design view; structural rules use the demo
// embeddings from lint/design.h.
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/analyzer.h"
#include "lint/design.h"
#include "lint/rule.h"
#include "sequence/gold.h"
#include "sequence/polynomials.h"

namespace clockmark::lint {
namespace {

const RuleRegistry& registry() {
  static const RuleRegistry kRegistry = builtin_rules();
  return kRegistry;
}

std::vector<Diagnostic> run_rule(const std::string& id,
                                 const Design& design) {
  const Rule* rule = registry().find(id);
  EXPECT_NE(rule, nullptr) << "unknown rule " << id;
  std::vector<Diagnostic> out;
  if (rule != nullptr) rule->run(design, out);
  return out;
}

std::size_t count_severity(const std::vector<Diagnostic>& diags,
                           Severity severity) {
  std::size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == severity) ++n;
  }
  return n;
}

/// A design carrying only watermark key views — enough for the sequence
/// and acquisition rules, which never touch the netlist.
Design keys_only_design(const std::vector<wgc::WgcConfig>& keys) {
  auto netlist = std::make_shared<rtl::Netlist>();
  const rtl::NetId clk = netlist->add_net("clk");
  Design design("unit", netlist, clk);
  std::size_t index = 0;
  for (const wgc::WgcConfig& key : keys) {
    WatermarkView view;
    view.name = "wm" + std::to_string(index++);
    view.module_path = view.name;
    view.wgc = key;
    design.add_watermark(std::move(view));
  }
  return design;
}

wgc::WgcConfig lfsr_key(unsigned width, std::uint32_t taps = 0,
                        std::uint32_t seed = 1) {
  return {wgc::WgcMode::kLfsr, width, taps, seed};
}

wgc::WgcConfig circular_key(unsigned width, std::uint32_t pattern) {
  return {wgc::WgcMode::kCircular, width, 0, pattern};
}

// --- structural rules -------------------------------------------------

TEST(LintRemovableWatermark, FlagsLoadCircuitAtErrorSeverity) {
  const Design design = design_load_circuit_demo("lc", lfsr_key(12));
  const auto diags = run_rule("removable-watermark", design);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_NE(diags[0].message.find("load registers"), std::string::npos);
  EXPECT_FALSE(diags[0].hint.empty());
}

TEST(LintRemovableWatermark, PassesClockModulationEmbedding) {
  const Design design = design_embedded_demo("emb", lfsr_key(12));
  const auto diags = run_rule("removable-watermark", design);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kInfo);
}

TEST(LintStandaloneComponent, FlagsExcisableLoadCircuit) {
  const Design design = design_load_circuit_demo("lc", lfsr_key(12));
  const auto diags = run_rule("standalone-component", design);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_NE(diags[0].message.find("outside the fan-in cone"),
            std::string::npos);
}

TEST(LintStandaloneComponent, PassesEntangledEmbedding) {
  const Design design = design_embedded_demo("emb", lfsr_key(12));
  const auto diags = run_rule("standalone-component", design);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kInfo);
}

TEST(LintStandaloneComponent, ErrorsWhenDesignHasNoObservableRoots) {
  const Design design = keys_only_design({lfsr_key(12)});
  const auto diags = run_rule("standalone-component", design);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_NE(diags[0].message.find("no primary output"), std::string::npos);
}

TEST(LintUnmodulatedClock, ReportsTheDemoIpFreeRunningCounter) {
  const Design design = design_embedded_demo("emb", lfsr_key(12));
  const auto diags = run_rule("unmodulated-clock", design);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kInfo);  // 3 of 271 registers
  EXPECT_NE(diags[0].message.find("no ICG"), std::string::npos);
}

TEST(LintUnmodulatedClock, SilentWhenEveryFunctionalFlopIsGated) {
  // The chip presets gate the whole bank; only the exempt WGC free-runs.
  const Design design =
      design_from_scenario_config("chip1", sim::chip1_default());
  EXPECT_TRUE(run_rule("unmodulated-clock", design).empty());
}

// --- sequence rules ---------------------------------------------------

TEST(LintWgcPrimitivity, FlagsNonPrimitivePolynomial) {
  // x^4 + x^3 + x^2 + x + 1 has order 5, not 15.
  const Design design = keys_only_design({lfsr_key(4, 0xF)});
  const auto diags = run_rule("wgc-primitivity", design);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_NE(diags[0].message.find("collapses to 5"), std::string::npos);
}

TEST(LintWgcPrimitivity, PassesTablePolynomialsAndFlagsBadWidth) {
  EXPECT_TRUE(
      run_rule("wgc-primitivity", keys_only_design({lfsr_key(12)}))
          .empty());
  const auto wide = run_rule("wgc-primitivity",
                             keys_only_design({lfsr_key(33)}));
  ASSERT_EQ(wide.size(), 1u);
  EXPECT_EQ(wide[0].severity, Severity::kError);
}

TEST(LintWgcPrimitivity, WarnsOnCircularCarrier) {
  const auto diags = run_rule(
      "wgc-primitivity", keys_only_design({circular_key(12, 0xAAA)}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
}

TEST(LintWgcDegenerateState, FlagsLockUpSeeds) {
  const auto lfsr = run_rule("wgc-degenerate-state",
                             keys_only_design({lfsr_key(12, 0, 0)}));
  ASSERT_EQ(lfsr.size(), 1u);
  EXPECT_EQ(lfsr[0].severity, Severity::kError);
  // The seed is masked to the register width: 0x1000 & 0xFFF == 0.
  EXPECT_EQ(run_rule("wgc-degenerate-state",
                     keys_only_design({lfsr_key(12, 0, 0x1000)}))
                .size(),
            1u);
  const auto circular = run_rule(
      "wgc-degenerate-state", keys_only_design({circular_key(12, 0xFFF)}));
  ASSERT_EQ(circular.size(), 1u);
  EXPECT_EQ(circular[0].severity, Severity::kError);
}

TEST(LintWgcDegenerateState, PassesLiveSeeds) {
  EXPECT_TRUE(run_rule("wgc-degenerate-state",
                       keys_only_design({lfsr_key(12, 0, 0xC51),
                                         circular_key(12, 0xAAA)}))
                  .empty());
}

TEST(LintSequenceBalance, FlagsSkewedDutyCycle) {
  // One set bit in twelve: duty 1/12, 42 % off balanced.
  const auto diags = run_rule("sequence-balance",
                              keys_only_design({circular_key(12, 0x001)}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
}

TEST(LintSequenceBalance, PassesMSequenceDuty) {
  EXPECT_TRUE(
      run_rule("sequence-balance", keys_only_design({lfsr_key(12)}))
          .empty());
}

TEST(LintSequenceRuns, FlagsLongConstantStretch) {
  // Pattern 0x00F: a run of 8 zeros in a 12-cycle period.
  const auto diags = run_rule("sequence-runs",
                              keys_only_design({circular_key(12, 0x00F)}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
}

TEST(LintSequenceRuns, PassesMSequenceRuns) {
  // Longest m-sequence run is the register width: 12 << 4095 / 4.
  EXPECT_TRUE(run_rule("sequence-runs", keys_only_design({lfsr_key(12)}))
                  .empty());
}

TEST(LintGoldCrossCorrelation, RejectsShiftedCopiesOfOneSequence) {
  const auto diags = run_rule(
      "gold-cross-correlation",
      keys_only_design({lfsr_key(7, 0, 0x55), lfsr_key(7, 0, 0x2A)}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_NE(diags[0].message.find("shifts of one sequence"),
            std::string::npos);
}

TEST(LintGoldCrossCorrelation, AcceptsPreferredPairs) {
  const sequence::PreferredPair pair = sequence::preferred_pair(7);
  const auto diags = run_rule(
      "gold-cross-correlation",
      keys_only_design({lfsr_key(7, pair.taps_a, 0x55),
                        lfsr_key(7, pair.taps_b, 0x2A)}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kInfo);
}

TEST(LintGoldCrossCorrelation, MixedWidthsAreInformationalOnly) {
  const auto diags =
      run_rule("gold-cross-correlation",
               keys_only_design({lfsr_key(7), lfsr_key(9)}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kInfo);
  EXPECT_NE(diags[0].message.find("does not apply"), std::string::npos);
}

// --- acquisition rules ------------------------------------------------

TEST(LintTraceCoversPeriod, ErrorsBelowOnePeriodWarnsBelowFour) {
  Design design = keys_only_design({lfsr_key(12)});
  design.set_trace_cycles(1000);  // < 4095
  auto diags = run_rule("trace-covers-period", design);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);

  design.set_trace_cycles(10000);  // 2 periods
  diags = run_rule("trace-covers-period", design);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
}

TEST(LintTraceCoversPeriod, PassesPaperTraceLength) {
  Design design = keys_only_design({lfsr_key(12)});
  design.set_trace_cycles(300000);  // ~73 periods
  EXPECT_TRUE(run_rule("trace-covers-period", design).empty());
}

TEST(LintSamplingAliasing, ErrorsBelowNyquist) {
  Design design = keys_only_design({lfsr_key(12)});
  measure::AcquisitionConfig acq;
  acq.scope.sample_rate_hz = 15e6;  // 1.5 samples per 10 MHz cycle
  design.set_acquisition(acq);
  design.set_tech(power::TechLibrary{});
  const auto diags = run_rule("sampling-aliasing", design);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_NE(diags[0].message.find("Nyquist"), std::string::npos);
}

TEST(LintSamplingAliasing, WarnsOnSynthesisMismatchAndDeepPdnCutoff) {
  Design design = keys_only_design({lfsr_key(12)});
  measure::AcquisitionConfig acq;
  acq.waveform.samples_per_cycle = 40;  // scope says 50
  acq.pdn_cutoff_hz = 20e3;             // 500x below the clock
  design.set_acquisition(acq);
  design.set_tech(power::TechLibrary{});
  const auto diags = run_rule("sampling-aliasing", design);
  EXPECT_EQ(count_severity(diags, Severity::kWarning), 2u);
  EXPECT_EQ(count_severity(diags, Severity::kError), 0u);
}

TEST(LintSamplingAliasing, PassesThePaperSetup) {
  Design design = keys_only_design({lfsr_key(12)});
  design.set_acquisition(measure::AcquisitionConfig{});
  design.set_tech(power::TechLibrary{});  // 500 MS/s at 10 MHz = 50x
  EXPECT_TRUE(run_rule("sampling-aliasing", design).empty());
}

// --- registry and analyzer plumbing -----------------------------------

TEST(LintRegistry, CatalogIsCompleteAndIdUnique) {
  const RuleRegistry& reg = registry();
  EXPECT_EQ(reg.size(), 14u);  // 10 flat + 4 multi-domain rules
  for (const Rule* rule : reg.rules()) {
    EXPECT_EQ(reg.find(rule->info().id), rule);
    EXPECT_FALSE(rule->info().paper_ref.empty());
    EXPECT_FALSE(rule->info().description.empty());
  }
  EXPECT_EQ(reg.find("no-such-rule"), nullptr);
}

TEST(LintRegistry, RejectsDuplicateIds) {
  class DummyRule final : public Rule {
   public:
    const RuleInfo& info() const noexcept override {
      static const RuleInfo kInfo{"dummy", "t", "r", "d"};
      return kInfo;
    }
    void run(const Design&, std::vector<Diagnostic>&) const override {}
  };
  RuleRegistry reg;
  reg.add(std::make_unique<DummyRule>());
  EXPECT_THROW(reg.add(std::make_unique<DummyRule>()),
               std::invalid_argument);
}

TEST(LintAnalyzer, UnknownRuleIdThrows) {
  AnalyzerOptions options;
  options.enabled_rules = {"wgc-primitivity", "tpyo-rule"};
  EXPECT_THROW(Analyzer(registry(), options), std::invalid_argument);
}

TEST(LintAnalyzer, RuleSelectionAndSeverityFloorApply) {
  const Design design = design_load_circuit_demo("lc", lfsr_key(12));
  AnalyzerOptions options;
  options.enabled_rules = {"removable-watermark"};
  const LintReport only_removable =
      Analyzer(registry(), options).run(design);
  ASSERT_EQ(only_removable.diagnostics.size(), 1u);
  EXPECT_EQ(only_removable.diagnostics[0].rule, "removable-watermark");

  AnalyzerOptions floor;
  floor.min_severity = Severity::kError;
  const LintReport errors_only = Analyzer(registry(), floor).run(design);
  EXPECT_EQ(errors_only.counts.errors, errors_only.diagnostics.size());
  EXPECT_EQ(errors_only.counts.warnings, 0u);
  EXPECT_EQ(errors_only.counts.infos, 0u);
}

TEST(LintAnalyzer, SortsMostSevereFirst) {
  const Design design = design_load_circuit_demo("lc", lfsr_key(12));
  const LintReport report = Analyzer(registry()).run(design);
  for (std::size_t i = 1; i < report.diagnostics.size(); ++i) {
    EXPECT_GE(static_cast<int>(report.diagnostics[i - 1].severity),
              static_cast<int>(report.diagnostics[i].severity));
  }
  EXPECT_FALSE(report.clean());
}

}  // namespace
}  // namespace clockmark::lint
