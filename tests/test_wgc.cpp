#include "wgc/wgc.h"

#include <gtest/gtest.h>

#include "rtl/simulator.h"

namespace clockmark::wgc {
namespace {

TEST(WgcSequence, PaperConfiguration) {
  WgcConfig cfg;  // defaults: 12-bit maximal LFSR
  WgcSequence seq(cfg);
  EXPECT_EQ(seq.period(), 4095u);
  const auto period = seq.one_period();
  EXPECT_EQ(period.size(), 4095u);
  // Balanced: 2048 ones, 2047 zeros.
  std::size_t ones = 0;
  for (const bool b : period) ones += b ? 1 : 0;
  EXPECT_EQ(ones, 2048u);
}

TEST(WgcSequence, CircularMode) {
  WgcConfig cfg;
  cfg.mode = WgcMode::kCircular;
  cfg.width = 8;
  cfg.seed = 0b10110001u;
  WgcSequence seq(cfg);
  EXPECT_EQ(seq.period(), 8u);
  const auto bits = seq.generate(16);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(bits[i], bits[i + 8]) << "not periodic at " << i;
  }
}

TEST(WgcSequence, OnePeriodDoesNotAdvanceState) {
  WgcConfig cfg;
  WgcSequence seq(cfg);
  const auto before = seq.one_period();
  const auto stream = seq.generate(4095);
  EXPECT_EQ(before, stream);  // one_period used a fresh copy
}

struct GateLevelCase {
  WgcMode mode;
  unsigned width;
  std::uint32_t seed;
};

class GateLevelEquivalence : public ::testing::TestWithParam<GateLevelCase> {
};

TEST_P(GateLevelEquivalence, HardwareMatchesBehavioural) {
  const auto& pc = GetParam();
  WgcConfig cfg;
  cfg.mode = pc.mode;
  cfg.width = pc.width;
  cfg.seed = pc.seed;

  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  const auto hw = build_wgc(nl, nl.module("wgc"), clk, cfg);
  rtl::Simulator sim(nl);
  sim.set_clock_source(clk);

  WgcSequence behavioural(cfg);
  const std::size_t cycles = 3 * behavioural.period() + 7;
  for (std::size_t i = 0; i < cycles; ++i) {
    const bool hw_bit = sim.net_value(hw.wmark);
    const bool sw_bit = behavioural.step();
    ASSERT_EQ(hw_bit, sw_bit) << "cycle " << i;
    sim.step();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GateLevelEquivalence,
    ::testing::Values(GateLevelCase{WgcMode::kLfsr, 5, 1},
                      GateLevelCase{WgcMode::kLfsr, 8, 0xa5},
                      GateLevelCase{WgcMode::kLfsr, 12, 1},
                      GateLevelCase{WgcMode::kLfsr, 12, 0x7ff},
                      GateLevelCase{WgcMode::kCircular, 8, 0b1100101},
                      GateLevelCase{WgcMode::kCircular, 12, 0x001}));

TEST(BuildWgc, RegisterCountMatchesWidth) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  WgcConfig cfg;
  cfg.width = 12;
  const auto hw = build_wgc(nl, nl.module("wgc"), clk, cfg);
  EXPECT_EQ(hw.register_count, 12u);
  EXPECT_EQ(hw.flops.size(), 12u);
  EXPECT_EQ(nl.register_count("wgc"), 12u);
  // 12-bit polynomial with 4 tap exponents + x^0 = 5 terms -> 4 XOR
  // inputs -> 3 XOR gates.
  EXPECT_EQ(hw.xor_gates.size(), 3u);
  // One leaf clock buffer per stage.
  EXPECT_EQ(hw.clock_cells.size(), 12u);
}

TEST(BuildWgc, InvalidConfigThrows) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  WgcConfig bad;
  bad.width = 1;
  EXPECT_THROW(build_wgc(nl, 0, clk, bad), std::invalid_argument);
  WgcConfig zero_seed;
  zero_seed.seed = 0;
  EXPECT_THROW(build_wgc(nl, 0, clk, zero_seed), std::invalid_argument);
}

TEST(BuildWgc, RunsForeverWithoutLockup) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  WgcConfig cfg;
  cfg.width = 6;
  const auto hw = build_wgc(nl, nl.module("wgc"), clk, cfg);
  rtl::Simulator sim(nl);
  sim.set_clock_source(clk);
  // Count WMARK=1 cycles over two periods: must be 2 * 32 for 6-bit.
  std::size_t ones = 0;
  for (int i = 0; i < 126; ++i) {
    ones += sim.net_value(hw.wmark) ? 1 : 0;
    sim.step();
  }
  EXPECT_EQ(ones, 64u);
}

TEST(WgcConfig, EffectiveTapsDefaultsToMaximal) {
  WgcConfig cfg;
  cfg.width = 12;
  EXPECT_EQ(cfg.effective_taps(), sequence::maximal_taps(12));
  cfg.taps = 0x53;
  EXPECT_EQ(cfg.effective_taps(), 0x53u);
}

}  // namespace
}  // namespace clockmark::wgc
