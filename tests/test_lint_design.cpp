// The lint::Design view: derived connectivity (gating ICGs, clock
// subtrees, load-bearing masks) plus the end-to-end acceptance cases —
// the paper's chip I / chip II presets lint clean while the load-circuit
// baseline is rejected.
#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_set>

#include <gtest/gtest.h>

#include "lint/analyzer.h"
#include "lint/design.h"
#include "lint/rule.h"
#include "sequence/gold.h"
#include "sim/scenario.h"

namespace clockmark::lint {
namespace {

bool has_rule_at(const LintReport& report, const std::string& rule,
                 Severity severity) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) {
                       return d.rule == rule && d.severity == severity;
                     });
}

TEST(LintDesign, RejectsNullNetlist) {
  EXPECT_THROW(Design("bad", nullptr, rtl::kInvalidNet),
               std::invalid_argument);
}

TEST(LintDesign, NominalPeriodMatchesGeneratorMode) {
  EXPECT_EQ(Design::nominal_period({wgc::WgcMode::kLfsr, 12, 0, 1}),
            4095u);
  EXPECT_EQ(Design::nominal_period({wgc::WgcMode::kCircular, 12, 0, 1}),
            12u);
  EXPECT_EQ(Design::nominal_period({wgc::WgcMode::kLfsr, 1, 0, 1}), 0u);
  EXPECT_EQ(Design::nominal_period({wgc::WgcMode::kLfsr, 33, 0, 1}), 0u);
}

TEST(LintDesign, ScenarioConfigViewCarriesExperimentContext) {
  const sim::ScenarioConfig config = sim::chip1_default();
  const Design design = design_from_scenario_config("chip1", config);
  ASSERT_EQ(design.watermarks().size(), 1u);
  EXPECT_EQ(design.watermarks()[0].wgc.seed, config.watermark.wgc.seed);
  ASSERT_TRUE(design.trace_cycles().has_value());
  EXPECT_EQ(*design.trace_cycles(), config.trace_cycles);
  ASSERT_TRUE(design.acquisition().has_value());
  EXPECT_DOUBLE_EQ(design.acquisition()->vdd_v, config.tech.vdd_v);
  ASSERT_TRUE(design.tech().has_value());
  EXPECT_FALSE(design.declared_functional().empty());
}

TEST(LintDesign, GatingIcgsFollowCombinationalEnableFanIn) {
  // enable = CLK_CTRL AND WMARK: every demo-IP group ICG must be found.
  const watermark::DemoIpConfig ip{4, 8};
  const Design design =
      design_embedded_demo("emb", {wgc::WgcMode::kLfsr, 12, 0, 1}, ip);
  const auto& icgs = design.gating_icgs(0);
  EXPECT_EQ(icgs.size(), ip.groups);
  for (const rtl::CellId icg : icgs) {
    EXPECT_EQ(design.netlist().cell(icg).kind, rtl::CellKind::kIcg);
    // Each gated subtree clocks that group's pipeline registers.
    EXPECT_EQ(design.clocked_flops_under(icg).size(),
              ip.registers_per_group);
  }
}

TEST(LintDesign, UngatedWalkStopsAtIcgs) {
  const watermark::DemoIpConfig ip{4, 8};
  const Design design =
      design_embedded_demo("emb", {wgc::WgcMode::kLfsr, 12, 0, 1}, ip);
  const auto ungated = design.ungated_clocked_flops();
  // The WGC stages free-run and the demo IP's mode counter (3 flops) is
  // deliberately ungated; the gated pipelines must not appear.
  EXPECT_EQ(ungated.size(), 12u + 3u);
  const auto& wgc_cells = design.watermarks()[0].wgc_cells;
  const std::unordered_set<rtl::CellId> wgc_set(wgc_cells.begin(),
                                                wgc_cells.end());
  std::size_t wgc_flops = 0;
  for (const rtl::CellId id : ungated) {
    if (wgc_set.count(id) > 0) ++wgc_flops;
  }
  EXPECT_EQ(wgc_flops, 12u);
}

TEST(LintDesign, LoadCircuitCellsAreOutsideTheLoadBearingCone) {
  const Design design =
      design_load_circuit_demo("lc", {wgc::WgcMode::kLfsr, 12, 0, 1}, 32);
  const auto& load_bearing = design.load_bearing_mask();
  const auto cells = design.watermark_cells(0);
  ASSERT_FALSE(cells.empty());
  for (const rtl::CellId id : cells) {
    EXPECT_FALSE(load_bearing[id])
        << design.netlist().cell(id).name << " should be excisable";
  }
  // The demo IP itself is load-bearing (its parity reaches data_out).
  const auto& functional = design.functional_state_mask();
  EXPECT_TRUE(std::any_of(functional.begin(), functional.end(),
                          [](bool f) { return f; }));
}

TEST(LintDesign, ScenarioViewAliasesTheLiveNetlist) {
  sim::ScenarioConfig config = sim::chip1_default();
  config.trace_cycles = 50000;
  const sim::Scenario scenario(config);
  const Design design = design_from_scenario("chip1-live", scenario);
  EXPECT_EQ(&design.netlist(), &scenario.watermark_netlist());
  EXPECT_FALSE(design.gating_icgs(0).empty());
}

// --- end-to-end acceptance (ISSUE.md) ---------------------------------

TEST(LintEndToEnd, ChipPresetsLintClean) {
  const RuleRegistry registry = builtin_rules();
  const Analyzer analyzer(registry);
  for (const auto* name : {"chip1", "chip2"}) {
    const sim::ScenarioConfig config = std::string(name) == "chip1"
                                           ? sim::chip1_default()
                                           : sim::chip2_default();
    const LintReport report =
        analyzer.run(design_from_scenario_config(name, config));
    EXPECT_TRUE(report.clean()) << name;
    EXPECT_EQ(report.counts.errors, 0u) << name;
    EXPECT_EQ(report.counts.warnings, 0u) << name;
  }
}

TEST(LintEndToEnd, LoadCircuitBaselineIsRejected) {
  const RuleRegistry registry = builtin_rules();
  const LintReport report = Analyzer(registry).run(
      design_load_circuit_demo("lc", {wgc::WgcMode::kLfsr, 12, 0, 1}));
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_rule_at(report, "removable-watermark", Severity::kError));
  EXPECT_TRUE(
      has_rule_at(report, "standalone-component", Severity::kError));
}

TEST(LintEndToEnd, DualWatermarkWithPreferredPairCoexists) {
  const sequence::PreferredPair pair = sequence::preferred_pair(7);
  const Design design = design_dual_embedded_demo(
      "dual", {wgc::WgcMode::kLfsr, 7, pair.taps_a, 0x55},
      {wgc::WgcMode::kLfsr, 7, pair.taps_b, 0x2A});
  const RuleRegistry registry = builtin_rules();
  const LintReport report = Analyzer(registry).run(design);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(
      has_rule_at(report, "gold-cross-correlation", Severity::kInfo));
}

}  // namespace
}  // namespace clockmark::lint
