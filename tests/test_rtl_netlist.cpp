#include "rtl/netlist.h"

#include <gtest/gtest.h>

namespace clockmark::rtl {
namespace {

TEST(Netlist, NetsHaveStableNamesAndIds) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(nl.net_name(a), "a");
  EXPECT_EQ(nl.net_name(b), "b");
  EXPECT_EQ(nl.net_count(), 2u);
  EXPECT_EQ(nl.find_net("a"), a);
  EXPECT_FALSE(nl.find_net("missing").has_value());
}

TEST(Netlist, DuplicateNetNameThrows) {
  Netlist nl;
  nl.add_net("x");
  EXPECT_THROW(nl.add_net("x"), std::invalid_argument);
}

TEST(Netlist, ModulesInterned) {
  Netlist nl;
  const auto m1 = nl.module("soc/wm");
  const auto m2 = nl.module("soc/wm");
  const auto m3 = nl.module("soc/ip");
  EXPECT_EQ(m1, m2);
  EXPECT_NE(m1, m3);
  EXPECT_EQ(nl.module_path(m1), "soc/wm");
  EXPECT_EQ(nl.module_path(0), "");  // root module exists by default
}

TEST(Netlist, AddGateValidatesInputCount) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId o = nl.add_net("o");
  EXPECT_THROW(nl.add_gate(CellKind::kAnd2, "g", 0, {a}, o),
               std::invalid_argument);
  EXPECT_NO_THROW(nl.add_gate(CellKind::kInv, "g", 0, {a}, o));
}

TEST(Netlist, AddGateRejectsSequentialKinds) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId o = nl.add_net("o");
  EXPECT_THROW(nl.add_gate(CellKind::kDff, "ff", 0, {a}, o),
               std::invalid_argument);
  EXPECT_THROW(nl.add_gate(CellKind::kIcg, "icg", 0, {a}, o),
               std::invalid_argument);
}

TEST(Netlist, DriversAndLoads) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId o = nl.add_net("o");
  const CellId inv = nl.add_gate(CellKind::kInv, "inv", 0, {a}, b);
  const CellId and2 = nl.add_gate(CellKind::kAnd2, "and", 0, {a, b}, o);
  EXPECT_EQ(nl.drivers_of(b), std::vector<CellId>{inv});
  const auto loads_a = nl.loads_of(a);
  EXPECT_EQ(loads_a.size(), 2u);
  EXPECT_EQ(nl.loads_of(b), std::vector<CellId>{and2});
  EXPECT_TRUE(nl.drivers_of(a).empty());
}

TEST(Netlist, ClockPinCountsAsLoad) {
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const NetId d = nl.add_net("d");
  const NetId q = nl.add_net("q");
  const CellId ff = nl.add_flop(CellKind::kDff, "ff", 0, {d}, q, clk);
  EXPECT_EQ(nl.loads_of(clk), std::vector<CellId>{ff});
}

TEST(Netlist, CensusAndRegisterCount) {
  Netlist nl;
  const auto wm = nl.module("wm");
  const auto ip = nl.module("ip");
  const NetId clk = nl.add_net("clk");
  const NetId d = nl.add_net("d");
  const NetId q1 = nl.add_net("q1");
  const NetId q2 = nl.add_net("q2");
  const NetId n1 = nl.add_net("n1");
  nl.add_flop(CellKind::kDff, "f1", wm, {d}, q1, clk);
  nl.add_flop(CellKind::kDff, "f2", ip, {d}, q2, clk);
  nl.add_gate(CellKind::kInv, "i1", ip, {q2}, n1);
  EXPECT_EQ(nl.register_count(), 2u);
  EXPECT_EQ(nl.register_count("wm"), 1u);
  EXPECT_EQ(nl.register_count("ip"), 1u);
  const auto census = nl.census("ip");
  EXPECT_EQ(census.at(CellKind::kDff), 1u);
  EXPECT_EQ(census.at(CellKind::kInv), 1u);
  EXPECT_EQ(census.count(CellKind::kAnd2), 0u);
}

TEST(Netlist, ModulePrefixMatching) {
  Netlist nl;
  const auto a = nl.module("soc/watermark");
  const NetId n = nl.add_net("n");
  const NetId o = nl.add_net("o");
  const CellId c = nl.add_gate(CellKind::kInv, "i", a, {n}, o);
  EXPECT_TRUE(nl.cell_in_module(c, "soc"));
  EXPECT_TRUE(nl.cell_in_module(c, "soc/watermark"));
  EXPECT_FALSE(nl.cell_in_module(c, "soc/ip"));
  EXPECT_TRUE(nl.cell_in_module(c, ""));  // everything matches the root
}

TEST(Netlist, RemoveCellsCompacts) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId c = nl.add_net("c");
  const CellId g1 = nl.add_gate(CellKind::kInv, "g1", 0, {a}, b);
  nl.add_gate(CellKind::kInv, "g2", 0, {b}, c);
  nl.remove_cells({g1});
  EXPECT_EQ(nl.cell_count(), 1u);
  EXPECT_EQ(nl.cell(0).name, "g2");
  EXPECT_TRUE(nl.drivers_of(b).empty());  // b is now undriven
}

TEST(Netlist, RemoveIgnoresOutOfRangeIds) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.add_gate(CellKind::kInv, "g", 0, {a}, b);
  nl.remove_cells({42});
  EXPECT_EQ(nl.cell_count(), 1u);
}

TEST(Netlist, PrimaryPorts) {
  Netlist nl;
  const NetId in = nl.add_net("in");
  const NetId out = nl.add_net("out");
  nl.mark_input(in);
  nl.mark_output(out);
  EXPECT_EQ(nl.primary_inputs(), std::vector<NetId>{in});
  EXPECT_EQ(nl.primary_outputs(), std::vector<NetId>{out});
}

TEST(CellKinds, InputCounts) {
  EXPECT_EQ(input_count(CellKind::kConst0), 0u);
  EXPECT_EQ(input_count(CellKind::kInv), 1u);
  EXPECT_EQ(input_count(CellKind::kAnd2), 2u);
  EXPECT_EQ(input_count(CellKind::kMux2), 3u);
  EXPECT_EQ(input_count(CellKind::kDff), 1u);
  EXPECT_EQ(input_count(CellKind::kDffEn), 2u);
  EXPECT_EQ(input_count(CellKind::kIcg), 1u);
}

TEST(CellKinds, Classification) {
  EXPECT_TRUE(is_clock_cell(CellKind::kClockBuffer));
  EXPECT_TRUE(is_clock_cell(CellKind::kIcg));
  EXPECT_FALSE(is_clock_cell(CellKind::kDff));
  EXPECT_TRUE(is_sequential(CellKind::kDff));
  EXPECT_TRUE(is_sequential(CellKind::kDffEn));
  EXPECT_FALSE(is_sequential(CellKind::kIcg));
  EXPECT_EQ(kind_name(CellKind::kIcg), "ICG");
  EXPECT_EQ(kind_name(CellKind::kDff), "DFF");
}

}  // namespace
}  // namespace clockmark::rtl
