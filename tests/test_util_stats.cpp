#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace clockmark::util {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats rs;
  for (const double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_DOUBLE_EQ(rs.mean(), 6.2);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 16.0);
  double var = 0.0;
  for (const double x : xs) var += (x - 6.2) * (x - 6.2);
  EXPECT_NEAR(rs.variance(), var / 5.0, 1e-12);
  EXPECT_NEAR(rs.sample_variance(), var / 4.0, 1e-12);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSinglePass) {
  Pcg32 rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(5.0, 3.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Pearson, PerfectPositive) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ShiftAndScaleInvariant) {
  Pcg32 rng(7);
  std::vector<double> x(500), y(500);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.gaussian();
    y[i] = rng.gaussian();
  }
  const double base = pearson(x, y);
  std::vector<double> y2(y);
  for (auto& v : y2) v = 3.0 * v + 100.0;
  EXPECT_NEAR(pearson(x, y2), base, 1e-12);
}

TEST(Pearson, ZeroVarianceGivesZero) {
  const std::vector<double> x = {1, 1, 1, 1};
  const std::vector<double> y = {1, 2, 3, 4};
  EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Pearson, LengthMismatchThrows) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_THROW(pearson(x, y), std::invalid_argument);
}

TEST(Pearson, UncorrelatedNoiseIsSmall) {
  Pcg32 rng(11);
  std::vector<double> x(10000), y(10000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.gaussian();
    y[i] = rng.gaussian();
  }
  EXPECT_LT(std::fabs(pearson(x, y)), 0.05);
}

TEST(Quantile, KnownValues) {
  const std::vector<double> s = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(quantile(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(s, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(s, 0.5), 5.5);
}

TEST(Quantile, UnsortedInput) {
  const std::vector<double> s = {9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(quantile(s, 0.5), 5.0);
}

TEST(Quantile, EmptyThrows) {
  const std::vector<double> s;
  EXPECT_THROW(quantile(s, 0.5), std::invalid_argument);
}

TEST(BoxPlotStats, CoversNinetyFivePercent) {
  Pcg32 rng(13);
  std::vector<double> s(20000);
  for (auto& v : s) v = rng.gaussian();
  const BoxPlot bp = box_plot(s);
  EXPECT_NEAR(bp.median, 0.0, 0.05);
  EXPECT_NEAR(bp.q_low, -1.96, 0.1);   // 2.5th pct of N(0,1)
  EXPECT_NEAR(bp.q_high, 1.96, 0.1);   // 97.5th pct
  // ~5 % of samples are outliers by construction.
  EXPECT_NEAR(static_cast<double>(bp.outliers.size()) / s.size(), 0.05,
              0.01);
  EXPECT_LE(bp.whisker_low, bp.q_low);
  EXPECT_GE(bp.whisker_high, bp.q_high);
}

TEST(MeanStddev, Basics) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
  EXPECT_DOUBLE_EQ(z_score(9.0, v), 2.0);
}

TEST(MeanStddev, EmptySafe) {
  const std::vector<double> v;
  EXPECT_EQ(mean(v), 0.0);
  EXPECT_EQ(stddev(v), 0.0);
}

}  // namespace
}  // namespace clockmark::util
