#include "dsp/correlate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sequence/lfsr.h"
#include "sequence/polynomials.h"
#include "util/rng.h"

namespace clockmark::dsp {
namespace {

std::vector<double> random_trace(std::size_t n, std::uint64_t seed) {
  util::Pcg32 rng(seed);
  std::vector<double> y(n);
  for (auto& v : y) v = rng.gaussian(5.0, 2.0);
  return y;
}

std::vector<double> random_pattern(std::size_t p, std::uint64_t seed) {
  util::Pcg32 rng(seed);
  std::vector<double> x(p);
  for (auto& v : x) v = rng.bernoulli(0.5) ? 1.0 : 0.0;
  return x;
}

TEST(FoldByPhase, CountsAndSums) {
  const std::vector<double> y = {1, 2, 3, 4, 5, 6, 7};
  const auto fold = fold_by_phase(y, 3);
  ASSERT_EQ(fold.sums.size(), 3u);
  // Phases: 0 -> {1,4,7}, 1 -> {2,5}, 2 -> {3,6}.
  EXPECT_DOUBLE_EQ(fold.sums[0], 12.0);
  EXPECT_DOUBLE_EQ(fold.sums[1], 7.0);
  EXPECT_DOUBLE_EQ(fold.sums[2], 9.0);
  EXPECT_EQ(fold.counts[0], 3u);
  EXPECT_EQ(fold.counts[1], 2u);
  EXPECT_EQ(fold.counts[2], 2u);
  EXPECT_DOUBLE_EQ(fold.total, 28.0);
  EXPECT_EQ(fold.n, 7u);
}

TEST(FoldByPhase, ZeroPeriodThrows) {
  const std::vector<double> y = {1.0};
  EXPECT_THROW(fold_by_phase(y, 0), std::invalid_argument);
}

struct SizeCase {
  std::size_t n;
  std::size_t p;
};

class RotationAgreement : public ::testing::TestWithParam<SizeCase> {};

TEST_P(RotationAgreement, AllThreeMethodsMatch) {
  const auto [n, p] = GetParam();
  const auto y = random_trace(n, n * 131 + p);
  const auto x = random_pattern(p, p * 17 + 3);
  const auto naive = rotation_correlation_naive(y, x);
  const auto folded = rotation_correlation_folded(y, x);
  const auto fft = rotation_correlation_fft(y, x);
  ASSERT_EQ(naive.size(), p);
  ASSERT_EQ(folded.size(), p);
  ASSERT_EQ(fft.size(), p);
  for (std::size_t r = 0; r < p; ++r) {
    EXPECT_NEAR(folded[r], naive[r], 1e-9) << "folded vs naive at r=" << r;
    EXPECT_NEAR(fft[r], naive[r], 1e-9) << "fft vs naive at r=" << r;
  }
}

// Mixes divisible and non-divisible N/P combinations — the exactness of
// the folded correction for ragged tails is the point of these cases.
INSTANTIATE_TEST_SUITE_P(
    Sizes, RotationAgreement,
    ::testing::Values(SizeCase{64, 8}, SizeCase{65, 8}, SizeCase{100, 7},
                      SizeCase{1000, 31}, SizeCase{1023, 31},
                      SizeCase{997, 63}, SizeCase{2000, 127},
                      SizeCase{4095, 4095}, SizeCase{5000, 255}));

TEST(RotationCorrelation, RecoversEmbeddedPhase) {
  // Y = noisy tiled pattern at a known rotation; the sweep must peak there.
  const std::size_t p = 127;
  const std::size_t n = 10000;
  const std::size_t truth = 61;
  sequence::Lfsr lfsr(7, sequence::maximal_taps(7), 1);
  std::vector<double> pattern(p);
  for (auto& v : pattern) v = lfsr.step() ? 1.0 : 0.0;

  util::Pcg32 rng(1234);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = pattern[(i + truth) % p] * 0.5 + rng.gaussian(10.0, 1.0);
  }
  const auto rho = rotation_correlation_fft(y, pattern);
  std::size_t best = 0;
  for (std::size_t r = 1; r < p; ++r) {
    if (rho[r] > rho[best]) best = r;
  }
  EXPECT_EQ(best, truth);
  EXPECT_GT(rho[truth], 0.15);
}

TEST(RotationCorrelation, ConstantTraceGivesZero) {
  const std::vector<double> y(100, 3.0);
  const auto x = random_pattern(10, 5);
  for (const double r : rotation_correlation_folded(y, x)) {
    EXPECT_EQ(r, 0.0);
  }
  for (const double r : rotation_correlation_fft(y, x)) {
    EXPECT_EQ(r, 0.0);
  }
}

TEST(RotationCorrelation, ConstantPatternGivesZero) {
  const auto y = random_trace(100, 3);
  const std::vector<double> x(10, 1.0);
  for (const double r : rotation_correlation_folded(y, x)) {
    EXPECT_EQ(r, 0.0);
  }
}

TEST(RotationCorrelation, EmptyPatternThrows) {
  const auto y = random_trace(10, 3);
  const std::vector<double> x;
  EXPECT_THROW(rotation_correlation_folded(y, x), std::invalid_argument);
  EXPECT_THROW(rotation_correlation_fft(y, x), std::invalid_argument);
  EXPECT_THROW(rotation_correlation_naive(y, x), std::invalid_argument);
}

TEST(RotationCorrelation, TraceShorterThanPeriodThrows) {
  const auto y = random_trace(5, 3);
  const auto x = random_pattern(10, 5);
  EXPECT_THROW(rotation_correlation_folded(y, x), std::invalid_argument);
}

TEST(RotationCorrelation, NonBinaryPatternsSupported) {
  // The folded math must not assume x^2 == x.
  const std::size_t n = 500, p = 25;
  const auto y = random_trace(n, 9);
  util::Pcg32 rng(10);
  std::vector<double> x(p);
  for (auto& v : x) v = rng.gaussian(0.0, 2.0);
  const auto naive = rotation_correlation_naive(y, x);
  const auto folded = rotation_correlation_folded(y, x);
  const auto fft = rotation_correlation_fft(y, x);
  for (std::size_t r = 0; r < p; ++r) {
    EXPECT_NEAR(folded[r], naive[r], 1e-9);
    EXPECT_NEAR(fft[r], naive[r], 1e-9);
  }
}

}  // namespace
}  // namespace clockmark::dsp
