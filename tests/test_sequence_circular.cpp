#include "sequence/circular.h"

#include <gtest/gtest.h>

namespace clockmark::sequence {
namespace {

TEST(Circular, EmitsPatternRepeatedly) {
  // Pattern 0b1011 (LSB first: 1,1,0,1) repeats with period 4.
  CircularShiftRegister csr(4, 0b1011u);
  const auto bits = csr.generate(12);
  const std::vector<bool> expected = {true, true, false, true,
                                      true, true, false, true,
                                      true, true, false, true};
  EXPECT_EQ(bits, expected);
}

TEST(Circular, StatePreservedOverFullRotation) {
  CircularShiftRegister csr(8, 0xa5u);
  for (int i = 0; i < 8; ++i) csr.step();
  EXPECT_EQ(csr.state(), 0xa5u);
}

TEST(Circular, WidthOneConstant) {
  CircularShiftRegister one(1, 1u);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(one.step());
  CircularShiftRegister zero(1, 0u);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(zero.step());
}

TEST(Circular, Width32FullMask) {
  CircularShiftRegister csr(32, 0xffffffffu);
  for (int i = 0; i < 40; ++i) EXPECT_TRUE(csr.step());
}

TEST(Circular, ResetReplacesPattern) {
  CircularShiftRegister csr(4, 0b1111u);
  csr.reset(0b0001u);
  EXPECT_TRUE(csr.step());
  EXPECT_FALSE(csr.step());
  EXPECT_FALSE(csr.step());
  EXPECT_FALSE(csr.step());
  EXPECT_TRUE(csr.step());  // wrapped
}

TEST(Circular, PatternMaskedToWidth) {
  CircularShiftRegister csr(4, 0xf0u);
  EXPECT_EQ(csr.state(), 0u);
}

TEST(Circular, BadWidthThrows) {
  EXPECT_THROW(CircularShiftRegister(0, 1), std::invalid_argument);
  EXPECT_THROW(CircularShiftRegister(33, 1), std::invalid_argument);
}

TEST(Circular, OutputMatchesLsb) {
  CircularShiftRegister csr(6, 0b101010u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(csr.output(), (csr.state() & 1u) != 0u);
    csr.step();
  }
}

}  // namespace
}  // namespace clockmark::sequence
