#include "soc/cache.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace clockmark::soc {
namespace {

TEST(Cache, GeometryDerivation) {
  Cache c(CacheConfig{16 * 1024, 32, 4});
  EXPECT_EQ(c.sets(), 128u);  // 16K / (32 * 4)
}

TEST(Cache, InvalidGeometryThrows) {
  EXPECT_THROW(Cache(CacheConfig{16 * 1024, 33, 4}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{16 * 1024, 32, 3}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{1000, 32, 4}), std::invalid_argument);
}

TEST(Cache, ColdMissThenHit) {
  Cache c(CacheConfig{1024, 32, 2});
  EXPECT_FALSE(c.access(0x100, false));
  EXPECT_TRUE(c.access(0x100, false));
  EXPECT_TRUE(c.access(0x104, false));  // same line
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEviction) {
  // 2-way, line 32: lines mapping to the same set evict least recent.
  Cache c(CacheConfig{1024, 32, 2});  // 16 sets
  const std::uint32_t set_stride = 16 * 32;  // same set every 512 bytes
  c.access(0 * set_stride, false);  // A miss
  c.access(1 * set_stride, false);  // B miss
  c.access(0 * set_stride, false);  // A hit (B becomes LRU)
  c.access(2 * set_stride, false);  // C miss, evicts B
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_TRUE(c.access(0 * set_stride, false));   // A still present
  EXPECT_FALSE(c.access(1 * set_stride, false));  // B was evicted
}

TEST(Cache, DirtyWritebackCounted) {
  Cache c(CacheConfig{1024, 32, 2});
  const std::uint32_t set_stride = 16 * 32;
  c.access(0, true);               // dirty A
  c.access(set_stride, false);     // B
  c.access(2 * set_stride, false); // evicts A (LRU) -> writeback
  c.access(3 * set_stride, false); // evicts B -> clean, no writeback
  EXPECT_EQ(c.stats().writebacks, 1u);
  EXPECT_EQ(c.stats().evictions, 2u);
}

TEST(Cache, DirtyStickyOnHit) {
  Cache c(CacheConfig{1024, 32, 2});
  const std::uint32_t set_stride = 16 * 32;
  c.access(0, false);
  c.access(0, true);   // hit marks dirty
  c.access(set_stride, false);
  c.access(2 * set_stride, false);  // evicts line 0 -> must write back
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, InvalidateClears) {
  Cache c(CacheConfig{1024, 32, 2});
  c.access(0, false);
  c.invalidate();
  EXPECT_FALSE(c.access(0, false));
}

TEST(Cache, HitRateStat) {
  Cache c(CacheConfig{1024, 32, 2});
  EXPECT_EQ(c.stats().hit_rate(), 0.0);
  c.access(0, false);
  c.access(0, false);
  c.access(0, false);
  c.access(0, false);
  EXPECT_DOUBLE_EQ(c.stats().hit_rate(), 0.75);
  c.reset_stats();
  EXPECT_EQ(c.stats().hits, 0u);
}

struct Geometry {
  std::uint32_t size;
  std::uint32_t line;
  std::uint32_t ways;
};

class CacheGeometry : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheGeometry, SequentialScanHitRate) {
  // Scanning a working set that fits entirely: first pass misses per
  // line, later passes hit 100 %.
  const auto g = GetParam();
  Cache c(CacheConfig{g.size, g.line, g.ways});
  const std::uint32_t working_set = g.size / 2;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint32_t a = 0; a < working_set; a += 4) {
      c.access(a, false);
    }
  }
  const auto& st = c.stats();
  EXPECT_EQ(st.misses, working_set / g.line);
  EXPECT_EQ(st.evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheGeometry,
    ::testing::Values(Geometry{1024, 16, 1}, Geometry{4096, 32, 2},
                      Geometry{16384, 32, 4}, Geometry{32768, 64, 8}));

TEST(Cache, ThrashingWorkingSetEvicts) {
  // Working set = 2x capacity with a pathological stride: every access
  // misses after warmup in a direct-mapped cache.
  Cache c(CacheConfig{1024, 32, 1});
  util::Pcg32 rng(3);
  for (int i = 0; i < 1000; ++i) {
    c.access((rng.bounded(64)) * 1024, false);  // 64 lines, all set 0
  }
  EXPECT_GT(c.stats().misses, 900u);
}

}  // namespace
}  // namespace clockmark::soc
