#include "soc/bus.h"

#include <gtest/gtest.h>

#include "soc/memory.h"
#include "soc/peripherals.h"

namespace clockmark::soc {
namespace {

TEST(Bus, RoutesToMappedDevice) {
  Bus bus;
  auto ram = std::make_shared<Ram>(0x100);
  bus.map(0x1000, 0x100, ram);
  auto w = bus.write(0x1010, 0xabcd1234, 4);
  EXPECT_FALSE(w.fault);
  auto r = bus.read(0x1010, 4);
  EXPECT_FALSE(r.fault);
  EXPECT_EQ(r.data, 0xabcd1234u);
  EXPECT_EQ(ram->peek(0x10), 0x34);
}

TEST(Bus, UnmappedAddressFaults) {
  Bus bus;
  bus.map(0x1000, 0x100, std::make_shared<Ram>(0x100));
  EXPECT_TRUE(bus.read(0x0, 4).fault);
  EXPECT_TRUE(bus.read(0x1100, 4).fault);
  EXPECT_EQ(bus.stats().faults, 2u);
}

TEST(Bus, RegionBoundaryAccess) {
  Bus bus;
  bus.map(0x1000, 0x100, std::make_shared<Ram>(0x100));
  EXPECT_FALSE(bus.read(0x10fc, 4).fault);  // last word
  EXPECT_TRUE(bus.read(0x10fe, 4).fault);   // would straddle the edge
}

TEST(Bus, MisalignedAccessFaults) {
  Bus bus;
  bus.map(0, 0x100, std::make_shared<Ram>(0x100));
  EXPECT_TRUE(bus.read(1, 4).fault);
  EXPECT_TRUE(bus.read(2, 4).fault);
  EXPECT_TRUE(bus.read(1, 2).fault);
  EXPECT_FALSE(bus.read(1, 1).fault);
  EXPECT_FALSE(bus.read(2, 2).fault);
}

TEST(Bus, BadSizeFaults) {
  Bus bus;
  bus.map(0, 0x100, std::make_shared<Ram>(0x100));
  EXPECT_TRUE(bus.read(0, 3).fault);
  EXPECT_TRUE(bus.read(0, 8).fault);
}

TEST(Bus, OverlappingRegionRejected) {
  Bus bus;
  bus.map(0x1000, 0x100, std::make_shared<Ram>(0x100));
  EXPECT_THROW(bus.map(0x10f0, 0x100, std::make_shared<Ram>(0x100)),
               std::invalid_argument);
  // Adjacent is fine.
  EXPECT_NO_THROW(bus.map(0x1100, 0x100, std::make_shared<Ram>(0x100)));
}

TEST(Bus, EmptyRegionRejected) {
  Bus bus;
  EXPECT_THROW(bus.map(0, 0, std::make_shared<Ram>(0x100)),
               std::invalid_argument);
  EXPECT_THROW(bus.map(0, 0x100, nullptr), std::invalid_argument);
}

TEST(Bus, WaitStatesAccumulate) {
  Bus bus;
  bus.map(0, 0x100, std::make_shared<Ram>(0x100), /*extra_wait_states=*/2);
  const auto acc = bus.read(0, 4);
  EXPECT_EQ(acc.wait_cycles, 2u);
  EXPECT_EQ(bus.stats().wait_cycles, 2u);
}

TEST(Bus, StatsCountReadsAndWrites) {
  Bus bus;
  bus.map(0, 0x100, std::make_shared<Ram>(0x100));
  bus.read(0, 4);
  bus.read(4, 4);
  bus.write(8, 1, 4);
  EXPECT_EQ(bus.stats().reads, 2u);
  EXPECT_EQ(bus.stats().writes, 1u);
  bus.reset_stats();
  EXPECT_EQ(bus.stats().reads, 0u);
}

TEST(Bus, CycleTransactionsDrained) {
  Bus bus;
  bus.map(0, 0x100, std::make_shared<Ram>(0x100));
  bus.read(0, 4);
  bus.write(4, 2, 4);
  EXPECT_EQ(bus.take_cycle_transactions(), 2u);
  EXPECT_EQ(bus.take_cycle_transactions(), 0u);  // drained
}

TEST(Bus, TickReachesDevices) {
  Bus bus;
  auto timer = std::make_shared<Timer>();
  bus.map(0x4000, 0x100, timer);
  for (int i = 0; i < 5; ++i) bus.tick();
  EXPECT_EQ(timer->count(), 5u);
}

}  // namespace
}  // namespace clockmark::soc
