#include "cpu/core.h"

#include <gtest/gtest.h>

#include "cpu/assembler.h"
#include "cpu/programs.h"

namespace clockmark::cpu {
namespace {

/// Flat test memory: 64 KiB ROM at 0, 64 KiB RAM at kRamBase.
class TestBus : public BusInterface {
 public:
  std::vector<std::uint8_t> rom = std::vector<std::uint8_t>(0x10000, 0);
  std::vector<std::uint8_t> ram = std::vector<std::uint8_t>(0x10000, 0);

  void load(const ProgramImage& image) {
    for (std::size_t i = 0; i < image.words.size(); ++i) {
      for (unsigned b = 0; b < 4; ++b) {
        rom[image.base_address + i * 4 + b] =
            static_cast<std::uint8_t>(image.words[i] >> (8 * b));
      }
    }
  }

  Access read(std::uint32_t addr, unsigned bytes) override {
    auto* mem = region(addr);
    if (mem == nullptr) return {0, 0, true};
    const std::uint32_t off = offset(addr);
    std::uint32_t v = 0;
    for (unsigned i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint32_t>((*mem)[off + i]) << (8 * i);
    }
    return {v, 0, false};
  }
  Access write(std::uint32_t addr, std::uint32_t data,
               unsigned bytes) override {
    auto* mem = region(addr);
    if (mem == nullptr || mem == &rom) return {0, 0, true};
    const std::uint32_t off = offset(addr);
    for (unsigned i = 0; i < bytes; ++i) {
      (*mem)[off + i] = static_cast<std::uint8_t>(data >> (8 * i));
    }
    return {0, 0, false};
  }

 private:
  std::vector<std::uint8_t>* region(std::uint32_t addr) {
    if (addr < 0x10000) return &rom;
    if (addr >= kRamBase && addr < kRamBase + 0x10000) return &ram;
    return nullptr;
  }
  static std::uint32_t offset(std::uint32_t addr) {
    return addr < 0x10000 ? addr : addr - kRamBase;
  }
};

/// Assembles, runs until halt (or cycle cap), returns the core.
struct RunResult {
  TestBus bus;
  std::unique_ptr<Em0Core> core;
};

std::unique_ptr<RunResult> run_program(const std::string& src,
                                       std::size_t max_cycles = 100000) {
  auto rr = std::make_unique<RunResult>();
  rr->bus.load(assemble(src).image);
  rr->core = std::make_unique<Em0Core>(rr->bus);
  rr->core->reset(0, kRamBase + 0x10000);
  std::size_t c = 0;
  while (!rr->core->halted() && !rr->core->faulted() && c++ < max_cycles) {
    rr->core->step();
  }
  return rr;
}

TEST(Em0Core, ArithmeticAndFlags) {
  auto rr = run_program(R"(
      mov r0, #7
      mov r1, #5
      add r2, r0, r1     ; 12
      sub r3, r0, r1     ; 2
      mul r4, r0, r1     ; 35
      rsb r5, r1, r0     ; r0 - r1? no: rsb rd, rn, rm -> rm - rn = 7-5=2
      halt)");
  EXPECT_EQ(rr->core->reg(2), 12u);
  EXPECT_EQ(rr->core->reg(3), 2u);
  EXPECT_EQ(rr->core->reg(4), 35u);
  EXPECT_EQ(rr->core->reg(5), 2u);
  EXPECT_FALSE(rr->core->faulted());
}

TEST(Em0Core, CarryAndOverflowFlags) {
  // 0xffffffff + 1 = 0 with carry out, no signed overflow.
  auto rr = run_program(R"(
      li  r0, 0xffffffff
      mov r1, #1
      add r2, r0, r1
      halt)");
  EXPECT_EQ(rr->core->reg(2), 0u);
  EXPECT_TRUE(rr->core->flag_z());
  EXPECT_TRUE(rr->core->flag_c());
  EXPECT_FALSE(rr->core->flag_v());

  // 0x7fffffff + 1 overflows signed.
  auto rr2 = run_program(R"(
      li  r0, 0x7fffffff
      mov r1, #1
      add r2, r0, r1
      halt)");
  EXPECT_TRUE(rr2->core->flag_v());
  EXPECT_TRUE(rr2->core->flag_n());
}

TEST(Em0Core, SubtractionBorrowSemantics) {
  // ARM-style: C = NOT borrow. 5 - 7 borrows -> C clear, negative result.
  auto rr = run_program(R"(
      mov r0, #5
      mov r1, #7
      sub r2, r0, r1
      halt)");
  EXPECT_EQ(rr->core->reg(2), 0xfffffffeu);
  EXPECT_FALSE(rr->core->flag_c());
  EXPECT_TRUE(rr->core->flag_n());
}

TEST(Em0Core, AdcSbcUseCarry) {
  auto rr = run_program(R"(
      li  r0, 0xffffffff
      mov r1, #1
      add r2, r0, r1    ; sets C
      mov r3, #10
      mov r4, #20
      adc r5, r3, r4    ; 10+20+1 = 31
      halt)");
  EXPECT_EQ(rr->core->reg(5), 31u);
}

TEST(Em0Core, LogicOperations) {
  auto rr = run_program(R"(
      li  r0, 0xff00ff00
      li  r1, 0x0ff00ff0
      and r2, r0, r1
      orr r3, r0, r1
      eor r4, r0, r1
      bic r5, r0, r1
      mvn r6, r0
      halt)");
  EXPECT_EQ(rr->core->reg(2), 0x0f000f00u);
  EXPECT_EQ(rr->core->reg(3), 0xfff0fff0u);
  EXPECT_EQ(rr->core->reg(4), 0xf0f0f0f0u);
  EXPECT_EQ(rr->core->reg(5), 0xf000f000u);
  EXPECT_EQ(rr->core->reg(6), 0x00ff00ffu);
}

TEST(Em0Core, Shifts) {
  auto rr = run_program(R"(
      mov r0, #1
      lsl r1, r0, #31
      lsr r2, r1, #31
      li  r3, 0x80000000
      asr r4, r3, #4
      mov r5, #3
      lsl r6, r0, r5
      halt)");
  EXPECT_EQ(rr->core->reg(1), 0x80000000u);
  EXPECT_EQ(rr->core->reg(2), 1u);
  EXPECT_EQ(rr->core->reg(4), 0xf8000000u);
  EXPECT_EQ(rr->core->reg(6), 8u);
}

TEST(Em0Core, RegisterShiftsBeyondWidth) {
  // Register-specified shifts can reach 32+: ARM-style results.
  auto rr = run_program(R"(
      li  r0, 0x80000001
      mov r1, #32
      lsl r2, r0, r1     ; -> 0, C = old bit 0
      lsr r3, r0, r1     ; -> 0, C = old bit 31
      mov r4, #40
      lsl r5, r0, r4     ; -> 0, C = 0
      asr r6, r0, r4     ; -> sign fill = 0xffffffff
      halt)");
  EXPECT_EQ(rr->core->reg(2), 0u);
  EXPECT_EQ(rr->core->reg(3), 0u);
  EXPECT_EQ(rr->core->reg(5), 0u);
  EXPECT_EQ(rr->core->reg(6), 0xffffffffu);
}

TEST(Em0Core, ZeroShiftLeavesValueAndCarry) {
  auto rr = run_program(R"(
      li  r0, 0xabcd1234
      mov r1, #0
      lsl r2, r0, r1
      lsr r3, r0, r1
      halt)");
  EXPECT_EQ(rr->core->reg(2), 0xabcd1234u);
  EXPECT_EQ(rr->core->reg(3), 0xabcd1234u);
}

TEST(Em0Core, MemoryWordHalfByte) {
  auto rr = run_program(R"(
      li   r9, 0x20000000
      li   r0, 0xdeadbeef
      str  r0, [r9]
      ldr  r1, [r9]
      ldrh r2, [r9]
      ldrb r3, [r9]
      ldrb r4, [r9, #3]
      strb r0, [r9, #8]
      ldr  r5, [r9, #8]
      halt)");
  EXPECT_EQ(rr->core->reg(1), 0xdeadbeefu);
  EXPECT_EQ(rr->core->reg(2), 0xbeefu);
  EXPECT_EQ(rr->core->reg(3), 0xefu);
  EXPECT_EQ(rr->core->reg(4), 0xdeu);
  EXPECT_EQ(rr->core->reg(5), 0xefu);
}

TEST(Em0Core, PushPopRoundTrip) {
  auto rr = run_program(R"(
      li   sp, 0x20010000
      mov  r4, #44
      mov  r5, #55
      push {r4, r5}
      mov  r4, #0
      mov  r5, #0
      pop  {r4, r5}
      halt)");
  EXPECT_EQ(rr->core->reg(4), 44u);
  EXPECT_EQ(rr->core->reg(5), 55u);
  EXPECT_EQ(rr->core->reg(kSp), 0x20010000u);
}

TEST(Em0Core, CallAndReturn) {
  auto rr = run_program(R"(
      li   sp, 0x20010000
      mov  r0, #5
      bl   double_it
      halt
  double_it:
      push {lr}
      add  r0, r0, r0
      pop  {pc}
      )");
  EXPECT_EQ(rr->core->reg(0), 10u);
  EXPECT_TRUE(rr->core->halted());
}

TEST(Em0Core, BxReturns) {
  auto rr = run_program(R"(
      mov  r0, #1
      bl   f
      add  r0, r0, #100
      halt
  f:
      add  r0, r0, #10
      bx   lr
      )");
  EXPECT_EQ(rr->core->reg(0), 111u);
}

struct CondCase {
  const char* branch;
  int lhs;
  int rhs;
  bool taken;
};

class ConditionalBranches : public ::testing::TestWithParam<CondCase> {};

TEST_P(ConditionalBranches, TakenWhenConditionHolds) {
  const auto& cc = GetParam();
  const std::string src = std::string("    mov r0, #") +
                          std::to_string(cc.lhs) + "\n    mov r1, #" +
                          std::to_string(cc.rhs) +
                          "\n    cmp r0, r1\n    " + cc.branch +
                          " taken\n    mov r2, #0\n    halt\ntaken:\n    "
                          "mov r2, #1\n    halt\n";
  auto rr = run_program(src);
  EXPECT_EQ(rr->core->reg(2), cc.taken ? 1u : 0u)
      << cc.branch << " " << cc.lhs << " vs " << cc.rhs;
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, ConditionalBranches,
    ::testing::Values(CondCase{"beq", 5, 5, true},
                      CondCase{"beq", 5, 6, false},
                      CondCase{"bne", 5, 6, true},
                      CondCase{"blt", 3, 5, true},
                      CondCase{"blt", 5, 3, false},
                      CondCase{"bge", 5, 5, true},
                      CondCase{"bgt", 6, 5, true},
                      CondCase{"ble", 5, 5, true},
                      CondCase{"bhi", 7, 3, true},
                      CondCase{"bls", 3, 7, true},
                      CondCase{"bcs", 7, 3, true},   // no borrow
                      CondCase{"bcc", 3, 7, true},   // borrow
                      CondCase{"bmi", 3, 7, true},
                      CondCase{"bpl", 7, 3, true}));

TEST(Em0Core, FibonacciEndToEnd) {
  auto result = assemble(fibonacci_source());
  TestBus bus;
  bus.load(result.image);
  Em0Core core(bus);
  core.reset(0, kRamBase + 0x10000);
  core.set_reg(0, 20);
  while (!core.halted()) core.step();
  EXPECT_EQ(core.reg(0), 6765u);  // fib(20)
}

TEST(Em0Core, MemcpyEndToEnd) {
  auto result = assemble(memcpy_source());
  TestBus bus;
  bus.load(result.image);
  for (int i = 0; i < 16; ++i) {
    bus.ram[i] = static_cast<std::uint8_t>(0xa0 + i);
  }
  Em0Core core(bus);
  core.reset(0, kRamBase + 0x10000);
  core.set_reg(0, kRamBase + 0x100);  // dst
  core.set_reg(1, kRamBase);          // src
  core.set_reg(2, 16);                // len
  while (!core.halted()) core.step();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(bus.ram[0x100 + i], 0xa0 + i);
  }
}

TEST(Em0Core, WfiSleepsUntilWake) {
  auto result = assemble("    wfi\n    mov r0, #9\n    halt\n");
  TestBus bus;
  bus.load(result.image);
  Em0Core core(bus);
  core.reset(0, kRamBase + 0x10000);
  core.step();  // executes wfi
  for (int i = 0; i < 5; ++i) {
    const auto& act = core.step();
    EXPECT_TRUE(act.sleeping);
  }
  core.wake();
  while (!core.halted()) core.step();
  EXPECT_EQ(core.reg(0), 9u);
}

TEST(Em0Core, UnmappedAccessFaults) {
  auto rr = run_program(R"(
      li  r0, 0x90000000
      ldr r1, [r0]
      halt)");
  EXPECT_TRUE(rr->core->faulted());
}

TEST(Em0Core, ActivityReporting) {
  auto result = assemble(R"(
      mov r0, #3
      mul r1, r0, r0
      lsl r2, r1, #2
      li  r9, 0x20000000
      str r2, [r9]
      halt)");
  TestBus bus;
  bus.load(result.image);
  Em0Core core(bus);
  core.reset(0, kRamBase + 0x10000);
  const auto& a1 = core.step();  // mov
  EXPECT_TRUE(a1.alu_used);
  EXPECT_TRUE(a1.fetch);
  const auto& a2 = core.step();  // mul
  EXPECT_TRUE(a2.multiplier_used);
  const auto& a3 = core.step();  // lsl
  EXPECT_TRUE(a3.shifter_used);
  core.step();                   // li part 1 (mov)
  core.step();                   // li part 2 (movt)
  const auto& a4 = core.step();  // str
  EXPECT_TRUE(a4.mem_write);
  const auto& a5 = core.step();  // stall cycle of str
  EXPECT_TRUE(a5.stall);
}

TEST(Em0Core, TogglesCountHammingDistance) {
  auto result = assemble(R"(
      li r0, 0x0000ffff
      halt)");
  TestBus bus;
  bus.load(result.image);
  Em0Core core(bus);
  core.reset(0, kRamBase + 0x10000);
  const auto& a = core.step();  // mov r0, #0xffff : r0 0 -> 0xffff
  EXPECT_EQ(a.data_toggle_bits, 16u);
  EXPECT_EQ(a.regfile_writes, 1u);
}

TEST(Em0Core, HaltedStaysHalted) {
  auto rr = run_program("    halt\n");
  const auto& act = rr->core->step();
  EXPECT_TRUE(act.halted);
  EXPECT_TRUE(rr->core->halted());
}

TEST(Em0Core, InstructionCountersAdvance) {
  auto rr = run_program(R"(
      mov r0, #1
      mov r1, #2
      halt)");
  EXPECT_EQ(rr->core->instructions_retired(), 3u);
  EXPECT_GE(rr->core->cycles(), 3u);
}

TEST(Em0Core, StateStringContainsRegisters) {
  auto rr = run_program("    mov r0, #255\n    halt\n");
  const std::string s = rr->core->state_string();
  EXPECT_NE(s.find("r0=0xff"), std::string::npos);
  EXPECT_NE(s.find("NZCV"), std::string::npos);
}

}  // namespace
}  // namespace clockmark::cpu
