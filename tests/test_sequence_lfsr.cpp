#include "sequence/lfsr.h"

#include <gtest/gtest.h>

#include "sequence/polynomials.h"
#include "sequence/properties.h"

namespace clockmark::sequence {
namespace {

class MaximalPeriod : public ::testing::TestWithParam<unsigned> {};

TEST_P(MaximalPeriod, FullPeriodReached) {
  const unsigned w = GetParam();
  Lfsr lfsr(w, maximal_taps(w), 1);
  EXPECT_EQ(lfsr.measure_period(),
            static_cast<std::size_t>(maximal_period(w)));
}

INSTANTIATE_TEST_SUITE_P(Widths, MaximalPeriod,
                         ::testing::Range(2u, 19u));  // 2..18 inclusive

TEST(Lfsr, PaperConfigurationPeriod4095) {
  // The test chips use a 12-bit maximal-length LFSR: period 2^12 - 1.
  Lfsr lfsr(12, maximal_taps(12), 1);
  EXPECT_EQ(lfsr.measure_period(), 4095u);
}

class MSequenceProperties : public ::testing::TestWithParam<unsigned> {};

TEST_P(MSequenceProperties, BalanceRunsAutocorrelation) {
  const unsigned w = GetParam();
  Lfsr lfsr(w, maximal_taps(w), 1);
  const auto seq = lfsr.generate(static_cast<std::size_t>(maximal_period(w)));
  EXPECT_TRUE(is_m_sequence_period(seq)) << "width " << w;
  EXPECT_EQ(balance(seq), 1);
  // Two-valued autocorrelation: -1 off-peak (already inside the check,
  // spot-verify a few shifts explicitly).
  EXPECT_EQ(periodic_autocorrelation(seq, 0),
            static_cast<long>(seq.size()));
  EXPECT_EQ(periodic_autocorrelation(seq, 1), -1);
  EXPECT_EQ(periodic_autocorrelation(seq, seq.size() / 2), -1);
}

INSTANTIATE_TEST_SUITE_P(Widths, MSequenceProperties,
                         ::testing::Values(5u, 7u, 9u, 10u, 12u));

TEST(MSequence, RunLengthDistribution) {
  // In one period of an m-sequence, half the runs have length 1, a
  // quarter length 2, etc.
  Lfsr lfsr(10, maximal_taps(10), 1);
  auto seq = lfsr.generate(1023);
  const auto runs = run_lengths(seq);
  std::size_t len1 = 0;
  for (const auto r : runs) {
    if (r == 1) ++len1;
  }
  const double frac = static_cast<double>(len1) /
                      static_cast<double>(runs.size());
  EXPECT_NEAR(frac, 0.5, 0.02);
}

TEST(MSequence, AutocorrelationSpectrumIsTwoValued) {
  Lfsr lfsr(8, maximal_taps(8), 1);
  const auto seq = lfsr.generate(255);
  const auto spectrum = autocorrelation_spectrum(seq);
  ASSERT_EQ(spectrum.size(), 255u);
  EXPECT_EQ(spectrum[0], 255);
  for (std::size_t s = 1; s < spectrum.size(); ++s) {
    EXPECT_EQ(spectrum[s], -1) << "shift " << s;
  }
}

TEST(Lfsr, SeedMasking) {
  Lfsr lfsr(4, maximal_taps(4), 0xffffffffu);
  EXPECT_EQ(lfsr.state(), 0xfu);
}

TEST(Lfsr, ZeroSeedThrows) {
  EXPECT_THROW(Lfsr(8, maximal_taps(8), 0), std::invalid_argument);
}

TEST(Lfsr, MaskedZeroSeedThrows) {
  // Seed nonzero but all set bits above the width: masked state is 0.
  EXPECT_THROW(Lfsr(4, maximal_taps(4), 0xf0u), std::invalid_argument);
}

TEST(Lfsr, BadWidthThrows) {
  EXPECT_THROW(Lfsr(1, 0x3, 1), std::invalid_argument);
  EXPECT_THROW(Lfsr(33, 0x3, 1), std::invalid_argument);
}

TEST(Lfsr, ZeroTapsThrows) {
  EXPECT_THROW(Lfsr(8, 0, 1), std::invalid_argument);
}

TEST(Lfsr, ResetRestoresSequence) {
  Lfsr lfsr(12, maximal_taps(12), 0x5a5u);
  const auto first = lfsr.generate(100);
  lfsr.reset(0x5a5u);
  const auto second = lfsr.generate(100);
  EXPECT_EQ(first, second);
}

TEST(Lfsr, ResetToZeroThrows) {
  Lfsr lfsr(12, maximal_taps(12), 1);
  EXPECT_THROW(lfsr.reset(0), std::invalid_argument);
}

TEST(Lfsr, OutputMatchesLsbBeforeStep) {
  Lfsr lfsr(8, maximal_taps(8), 0xa5u);
  for (int i = 0; i < 50; ++i) {
    const bool expected = lfsr.output();
    EXPECT_EQ(lfsr.step(), expected);
  }
}

TEST(Lfsr, DifferentSeedsAreRotations) {
  // Any nonzero seed yields the same cyclic sequence, phase-shifted.
  Lfsr a(8, maximal_taps(8), 1);
  Lfsr b(8, maximal_taps(8), 0x80u);
  const auto sa = a.generate(255);
  const auto sb = b.generate(255);
  bool found_rotation = false;
  for (std::size_t shift = 0; shift < 255 && !found_rotation; ++shift) {
    bool match = true;
    for (std::size_t i = 0; i < 255; ++i) {
      if (sa[(i + shift) % 255] != sb[i]) {
        match = false;
        break;
      }
    }
    found_rotation = match;
  }
  EXPECT_TRUE(found_rotation);
}

TEST(Polynomials, TapsOutOfRangeThrow) {
  EXPECT_THROW(maximal_taps(1), std::out_of_range);
  EXPECT_THROW(maximal_taps(33), std::out_of_range);
}

TEST(Polynomials, AllWidthsHaveConstantTerm) {
  for (unsigned w = 2; w <= 32; ++w) {
    EXPECT_TRUE(maximal_taps(w) & 1u) << "width " << w;
  }
}

TEST(Polynomials, Periods) {
  EXPECT_EQ(maximal_period(12), 4095u);
  EXPECT_EQ(maximal_period(32), 4294967295ull);
}

TEST(Lfsr, LargeWidthDoesNotLockUp) {
  // Cannot measure the full 2^32-1 period; verify no short cycle and no
  // all-zero lock-up within a million steps.
  Lfsr lfsr(32, maximal_taps(32), 0xdeadbeefu);
  const std::uint32_t start = lfsr.state();
  for (int i = 0; i < 1000000; ++i) {
    lfsr.step();
    ASSERT_NE(lfsr.state(), 0u);
    ASSERT_NE(lfsr.state(), start) << "short cycle at step " << i;
  }
}

}  // namespace
}  // namespace clockmark::sequence
