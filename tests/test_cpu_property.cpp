// Golden-model property test for the EM0 core: random straight-line ALU
// programs are executed both by the gate-accurate core and by a direct
// C++ evaluator of the ISA semantics; architectural state must match.
#include <gtest/gtest.h>

#include <array>

#include "cpu/assembler.h"
#include "cpu/core.h"
#include "cpu/programs.h"
#include "util/rng.h"

namespace clockmark::cpu {
namespace {

class NullBus : public BusInterface {
 public:
  std::vector<std::uint8_t> rom = std::vector<std::uint8_t>(0x10000, 0);
  Access read(std::uint32_t addr, unsigned bytes) override {
    if (addr + bytes > rom.size()) return {0, 0, true};
    std::uint32_t v = 0;
    for (unsigned i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint32_t>(rom[addr + i]) << (8 * i);
    }
    return {v, 0, false};
  }
  Access write(std::uint32_t, std::uint32_t, unsigned) override {
    return {0, 0, true};
  }
};

/// Reference interpreter for the register-to-register subset.
struct GoldenModel {
  std::array<std::uint32_t, 8> r{};

  void apply(const std::string& op, unsigned rd, unsigned rn, unsigned rm,
             unsigned shift) {
    if (op == "add") r[rd] = r[rn] + r[rm];
    else if (op == "sub") r[rd] = r[rn] - r[rm];
    else if (op == "mul") r[rd] = r[rn] * r[rm];
    else if (op == "and") r[rd] = r[rn] & r[rm];
    else if (op == "orr") r[rd] = r[rn] | r[rm];
    else if (op == "eor") r[rd] = r[rn] ^ r[rm];
    else if (op == "bic") r[rd] = r[rn] & ~r[rm];
    else if (op == "lsl") r[rd] = shift < 32 ? r[rn] << shift : 0;
    else if (op == "lsr") r[rd] = shift < 32 ? r[rn] >> shift : 0;
    else if (op == "asr")
      r[rd] = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(r[rn]) >> static_cast<int>(shift));
    else FAIL() << "unknown op " << op;
  }
};

class RandomAluPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomAluPrograms, CoreMatchesGoldenModel) {
  util::Pcg32 rng(GetParam());
  GoldenModel golden;
  std::string src;
  // Seed registers r0..r7 with random 32-bit values via li.
  for (unsigned i = 0; i < 8; ++i) {
    const std::uint32_t v = rng();
    golden.r[i] = v;
    src += "    li r" + std::to_string(i) + ", " + std::to_string(v) + "\n";
  }
  static constexpr const char* kOps[] = {"add", "sub", "mul", "and",
                                         "orr", "eor", "bic", "lsl",
                                         "lsr", "asr"};
  for (int i = 0; i < 200; ++i) {
    const std::string op = kOps[rng.bounded(10)];
    const unsigned rd = rng.bounded(8);
    const unsigned rn = rng.bounded(8);
    const unsigned rm = rng.bounded(8);
    const unsigned shift = 1 + rng.bounded(31);
    const bool is_shift = op == "lsl" || op == "lsr" || op == "asr";
    if (is_shift) {
      src += "    " + op + " r" + std::to_string(rd) + ", r" +
             std::to_string(rn) + ", #" + std::to_string(shift) + "\n";
      golden.apply(op, rd, rn, rm, shift);
    } else {
      src += "    " + op + " r" + std::to_string(rd) + ", r" +
             std::to_string(rn) + ", r" + std::to_string(rm) + "\n";
      golden.apply(op, rd, rn, rm, 0);
    }
  }
  src += "    halt\n";

  NullBus bus;
  const auto assembled = assemble(src);
  for (std::size_t i = 0; i < assembled.image.words.size(); ++i) {
    for (unsigned b = 0; b < 4; ++b) {
      bus.rom[i * 4 + b] =
          static_cast<std::uint8_t>(assembled.image.words[i] >> (8 * b));
    }
  }
  Em0Core core(bus);
  core.reset(0, 0);
  std::size_t guard = 0;
  while (!core.halted() && guard++ < 10000) core.step();
  ASSERT_TRUE(core.halted());
  ASSERT_FALSE(core.faulted());
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(core.reg(i), golden.r[i])
        << "r" << i << " diverged (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAluPrograms,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace clockmark::cpu
