// OnlineDetector and the chunked acquisition path against the batch
// reference: the streamed spread spectrum must equal cpa::detect over
// the materialised trace bit for bit — for chip I and chip II, at one
// and at eight executor threads — and the early stop must decide well
// before the trace ends on a detectable chip I run.
#include <gtest/gtest.h>

#include <vector>

#include "cpa/accumulator.h"
#include "cpa/detector.h"
#include "runtime/executor.h"
#include "sim/scenario.h"
#include "stream/online_detector.h"
#include "stream/trace_source.h"

namespace {

using namespace clockmark;
using sim::ChipModel;
using sim::Scenario;
using sim::ScenarioConfig;
using stream::Chunk;
using stream::OnlineDetector;
using stream::OnlineDetectorConfig;

ScenarioConfig fast_config(ChipModel chip, std::size_t cycles = 20000) {
  ScenarioConfig cfg = chip == ChipModel::kChip1 ? sim::chip1_default()
                                                 : sim::chip2_default();
  cfg.trace_cycles = cycles;
  // Short traces need a crisper measurement to keep tests deterministic.
  cfg.acquisition.scope.noise_v_rms = 2e-3;
  cfg.acquisition.probe.noise_v_rms = 0.5e-3;
  return cfg;
}

/// Streams Y into an online detector (early stop off) and returns the
/// final decision, asserting the whole trace was consumed.
stream::OnlineDecision stream_all(const std::vector<double>& y,
                                  const std::vector<double>& pattern,
                                  std::size_t chunk_cycles,
                                  cpa::CorrelationMethod method,
                                  runtime::Executor* executor) {
  OnlineDetectorConfig cfg;
  cfg.early_stop = false;
  cfg.method = method;
  OnlineDetector det(pattern, cfg);
  for (const Chunk& c : stream::chop(y, chunk_cycles)) {
    det.ingest(c, executor);
  }
  EXPECT_EQ(det.cycles_consumed(), y.size());
  return det.finalize(executor);
}

void expect_identical(const cpa::DetectionResult& online,
                      const cpa::DetectionResult& batch) {
  EXPECT_EQ(online.detected, batch.detected);
  EXPECT_EQ(online.spectrum.rho, batch.spectrum.rho);  // bit-identical
  EXPECT_EQ(online.spectrum.peak_rotation, batch.spectrum.peak_rotation);
  EXPECT_EQ(online.spectrum.peak_value, batch.spectrum.peak_value);
  EXPECT_EQ(online.spectrum.peak_z, batch.spectrum.peak_z);
}

class OnlineDetectorChips
    : public ::testing::TestWithParam<std::tuple<ChipModel, std::size_t>> {};

TEST_P(OnlineDetectorChips, BitIdenticalToBatchDetect) {
  const auto [chip, threads] = GetParam();
  const Scenario sc(fast_config(chip));
  const auto r = sc.run(0);
  const auto& y = r.acquisition.per_cycle_power_w;

  runtime::Executor executor(threads);
  const cpa::DetectionResult batch =
      cpa::Detector().detect(y, r.pattern, cpa::CorrelationMethod::kFft);

  // Uneven chunking (last chunk short, chunk not a divisor of the
  // period) must not matter.
  const auto online = stream_all(y, r.pattern, /*chunk_cycles=*/1234,
                                 cpa::CorrelationMethod::kFft, &executor);
  EXPECT_FALSE(online.decided);  // early stop was off
  expect_identical(online.result, batch);

  // The folded finalisation shares the identity guarantee.
  const auto folded = stream_all(y, r.pattern, 4096,
                                 cpa::CorrelationMethod::kFolded, &executor);
  const cpa::DetectionResult batch_folded =
      cpa::Detector().detect(y, r.pattern, cpa::CorrelationMethod::kFolded);
  expect_identical(folded.result, batch_folded);
}

INSTANTIATE_TEST_SUITE_P(
    ChipsAndThreads, OnlineDetectorChips,
    ::testing::Combine(::testing::Values(ChipModel::kChip1,
                                         ChipModel::kChip2),
                       ::testing::Values(std::size_t{1}, std::size_t{8})));

TEST(OnlineDetector, ScenarioSourceMatchesBatchAcquisition) {
  // The chunked synthesis + acquisition path reproduces the batch Y
  // vector bit for bit (chip II exercises the seeded noise overlay).
  for (const ChipModel chip : {ChipModel::kChip1, ChipModel::kChip2}) {
    const Scenario sc(fast_config(chip));
    const auto batch = sc.run(0);
    stream::ScenarioSource source(sc, 0, /*chunk_cycles=*/1536);
    std::vector<double> streamed;
    while (auto c = source.next()) {
      ASSERT_EQ(c->start_cycle, streamed.size());
      streamed.insert(streamed.end(), c->values.begin(), c->values.end());
    }
    EXPECT_EQ(streamed, batch.acquisition.per_cycle_power_w);
    EXPECT_EQ(source.pattern(), batch.pattern);
    EXPECT_EQ(source.true_rotation(), batch.true_rotation);
  }
}

TEST(OnlineDetector, EarlyStopDecidesWithinHalfTheTraceOnChip1) {
  // Acceptance criterion: at the default confidence threshold, a
  // detectable chip I trace is decided from at most 50% of its cycles.
  const Scenario sc(fast_config(ChipModel::kChip1, 32768));
  const auto r = sc.run(0);
  const auto& y = r.acquisition.per_cycle_power_w;

  OnlineDetector det(r.pattern, OnlineDetectorConfig{});  // defaults
  bool decided = false;
  for (const Chunk& c : stream::chop(y, 2048)) {
    if (det.ingest(c)) {
      decided = true;
      break;
    }
  }
  ASSERT_TRUE(decided);
  const auto& d = det.finalize();
  EXPECT_TRUE(d.detected);
  EXPECT_LE(d.decision_cycles, y.size() / 2);
  EXPECT_LT(d.decision_cycles, d.cycles + 1);  // recorded at decision time
  EXPECT_GE(d.confidence, 0.999);
  EXPECT_EQ(d.result.spectrum.peak_rotation, r.true_rotation);
}

TEST(OnlineDetector, EarlyStopNeverFiresOnInactiveWatermark) {
  auto cfg = fast_config(ChipModel::kChip1);
  cfg.watermark_active = false;
  const Scenario sc(cfg);
  const auto r = sc.run(0);

  OnlineDetector det(r.pattern, OnlineDetectorConfig{});
  for (const Chunk& c : stream::chop(r.acquisition.per_cycle_power_w, 2048)) {
    EXPECT_FALSE(det.ingest(c));
  }
  const auto& d = det.finalize();
  EXPECT_FALSE(d.decided);
  EXPECT_FALSE(d.detected);
}

TEST(OnlineDetector, OutOfOrderChunkThrows) {
  OnlineDetector det(std::vector<double>(63, 1.0), OnlineDetectorConfig{});
  Chunk c;
  c.values.assign(10, 0.5);
  det.ingest(c);
  Chunk gap;
  gap.start_cycle = 11;  // skips cycle 10
  gap.values.assign(5, 0.5);
  EXPECT_THROW(det.ingest(gap), std::invalid_argument);
  Chunk replay;  // replays cycles already consumed
  replay.start_cycle = 0;
  replay.values.assign(5, 0.5);
  EXPECT_THROW(det.ingest(replay), std::invalid_argument);
}

TEST(OnlineDetector, NaiveMethodRejected) {
  OnlineDetectorConfig cfg;
  cfg.method = cpa::CorrelationMethod::kNaive;
  EXPECT_THROW(OnlineDetector(std::vector<double>(63, 1.0), cfg),
               std::invalid_argument);
}

TEST(OnlineDetector, TraceShorterThanPeriodIsNotDetected) {
  OnlineDetector det(std::vector<double>(4095, 1.0), OnlineDetectorConfig{});
  Chunk c;
  c.values.assign(100, 1e-3);
  det.ingest(c);
  const auto& d = det.finalize();
  EXPECT_FALSE(d.detected);
  EXPECT_EQ(d.cycles, 100u);
  EXPECT_NE(d.result.reason.find("shorter"), std::string::npos);
}

TEST(RotationAccumulator, MatchesBatchCorrelationsChunkwise) {
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);
  const auto& y = r.acquisition.per_cycle_power_w;

  const std::vector<double> batch = cpa::correlate_rotations(
      y, r.pattern, cpa::CorrelationMethod::kFft);

  cpa::RotationAccumulator acc(r.pattern);
  for (const Chunk& c : stream::chop(y, 777)) acc.add(c.values);
  EXPECT_EQ(acc.cycles(), y.size());
  EXPECT_TRUE(acc.ready());
  EXPECT_EQ(acc.correlations(cpa::CorrelationMethod::kFft), batch);

  // Folded path, serial and parallel, equals its batch counterpart.
  const std::vector<double> batch_folded = cpa::correlate_rotations(
      y, r.pattern, cpa::CorrelationMethod::kFolded);
  EXPECT_EQ(acc.correlations(cpa::CorrelationMethod::kFolded), batch_folded);
  runtime::Executor executor(8);
  EXPECT_EQ(acc.correlations(cpa::CorrelationMethod::kFolded, &executor),
            batch_folded);
  EXPECT_THROW(acc.correlations(cpa::CorrelationMethod::kNaive),
               std::invalid_argument);
}

}  // namespace
