#include "util/ascii_chart.h"

#include <gtest/gtest.h>

#include <vector>

namespace clockmark::util {
namespace {

TEST(LineChart, EmptySeries) {
  ChartOptions opts;
  const std::string s = line_chart(std::vector<double>{}, opts);
  EXPECT_NE(s.find("empty"), std::string::npos);
}

TEST(LineChart, ContainsTitleAndAxis) {
  ChartOptions opts;
  opts.title = "My Chart";
  opts.x_label = "rotation";
  std::vector<double> y(200, 0.0);
  const std::string s = line_chart(y, opts);
  EXPECT_NE(s.find("My Chart"), std::string::npos);
  EXPECT_NE(s.find("rotation"), std::string::npos);
}

TEST(LineChart, SingleSpikeSurvivesDownsampling) {
  // 4095 points, one spike — min/max binning must keep it visible.
  std::vector<double> y(4095, 0.0);
  y[2400] = 1.0;
  ChartOptions opts;
  opts.width = 80;
  opts.height = 10;
  const std::string s = line_chart(y, opts);
  // The top row must contain a mark (the spike reaches the max row).
  const auto first_newline = s.find('\n');
  (void)first_newline;
  std::size_t stars = 0;
  for (const char c : s) {
    if (c == '*' || c == '|') ++stars;
  }
  EXPECT_GE(stars, 1u);
}

TEST(MultiPanel, OnePanelPerSeries) {
  std::vector<std::pair<std::string, std::vector<double>>> series = {
      {"alpha", {1, 2, 3}}, {"beta", {3, 2, 1}}};
  ChartOptions opts;
  const std::string s = multi_panel_chart(series, opts);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
}

TEST(DigitalWaveform, RendersLevelsAndEdges) {
  std::vector<std::pair<std::string, std::vector<bool>>> signals = {
      {"CLK", {true, false, true, false}},
      {"WMARK", {false, false, true, true}},
  };
  const std::string s = digital_waveform(signals);
  EXPECT_NE(s.find("CLK"), std::string::npos);
  EXPECT_NE(s.find("WMARK"), std::string::npos);
  EXPECT_NE(s.find('~'), std::string::npos);  // high level
  EXPECT_NE(s.find('_'), std::string::npos);  // low level
  EXPECT_NE(s.find('|'), std::string::npos);  // an edge
}

TEST(DigitalWaveform, TruncatesToMaxCycles) {
  std::vector<std::pair<std::string, std::vector<bool>>> signals = {
      {"S", std::vector<bool>(1000, true)}};
  const std::string s = digital_waveform(signals, 10);
  // 10 cycles * 3 chars + label; certainly below 100 chars per line.
  EXPECT_LT(s.size(), 100u);
}

TEST(BoxPlotRow, MarksMedianAndBox) {
  BoxPlot bp;
  bp.median = 0.5;
  bp.q_low = 0.3;
  bp.q_high = 0.7;
  bp.whisker_low = 0.1;
  bp.whisker_high = 0.9;
  const std::string s = box_plot_row("test", bp, 0.0, 1.0, 60);
  EXPECT_NE(s.find('M'), std::string::npos);
  EXPECT_NE(s.find('='), std::string::npos);
  EXPECT_NE(s.find('-'), std::string::npos);
  EXPECT_NE(s.find("test"), std::string::npos);
}

TEST(BoxPlotRow, OutliersRendered) {
  BoxPlot bp;
  bp.median = 0.5;
  bp.q_low = 0.45;
  bp.q_high = 0.55;
  bp.whisker_low = 0.45;
  bp.whisker_high = 0.55;
  bp.outliers = {0.05, 0.95};
  const std::string s = box_plot_row("o", bp, 0.0, 1.0, 60);
  EXPECT_NE(s.find('o'), std::string::npos);
}

}  // namespace
}  // namespace clockmark::util
