#include "soc/memory.h"

#include <gtest/gtest.h>

#include "cpu/assembler.h"
#include "soc/peripherals.h"

namespace clockmark::soc {
namespace {

TEST(Ram, ReadWriteAllWidths) {
  Ram ram(0x100);
  ram.write(0, 0x11223344, 4);
  EXPECT_EQ(ram.read(0, 4).data, 0x11223344u);
  EXPECT_EQ(ram.read(0, 2).data, 0x3344u);
  EXPECT_EQ(ram.read(2, 2).data, 0x1122u);
  EXPECT_EQ(ram.read(3, 1).data, 0x11u);
  ram.write(1, 0xee, 1);
  EXPECT_EQ(ram.read(0, 4).data, 0x1122ee44u);
}

TEST(Ram, OutOfBoundsFaults) {
  Ram ram(0x10);
  EXPECT_TRUE(ram.read(0x10, 1).fault);
  EXPECT_TRUE(ram.read(0xe, 4).fault);
  EXPECT_TRUE(ram.write(0x10, 0, 1).fault);
}

TEST(Ram, StatsCount) {
  Ram ram(0x10);
  ram.read(0, 4);
  ram.write(0, 1, 4);
  ram.write(4, 2, 4);
  EXPECT_EQ(ram.stats().reads, 1u);
  EXPECT_EQ(ram.stats().writes, 2u);
}

TEST(Ram, BackdoorPeekPoke) {
  Ram ram(0x10);
  ram.poke(3, 0x5a);
  EXPECT_EQ(ram.peek(3), 0x5a);
  EXPECT_EQ(ram.read(0, 4).data, 0x5a000000u);
}

TEST(Rom, LoadsImageAndReads) {
  Rom rom(0x100);
  cpu::ProgramImage img;
  img.words = {0x12345678u, 0x9abcdef0u};
  rom.load(img);
  EXPECT_EQ(rom.read(0, 4).data, 0x12345678u);
  EXPECT_EQ(rom.read(4, 4).data, 0x9abcdef0u);
}

TEST(Rom, LoadAtOffset) {
  Rom rom(0x100);
  cpu::ProgramImage img;
  img.words = {0xaabbccddu};
  rom.load(img, 0x40);
  EXPECT_EQ(rom.read(0x40, 4).data, 0xaabbccddu);
}

TEST(Rom, WriteFaults) {
  Rom rom(0x100);
  EXPECT_TRUE(rom.write(0, 1, 4).fault);
}

TEST(Rom, OversizeImageThrows) {
  Rom rom(0x8);
  cpu::ProgramImage img;
  img.words = {1, 2, 3};
  EXPECT_THROW(rom.load(img), std::out_of_range);
}

TEST(Uart, CollectsBytes) {
  Uart uart;
  uart.write(0, 'H', 1);
  uart.write(0, 'i', 1);
  EXPECT_EQ(uart.output(), "Hi");
  uart.clear();
  EXPECT_TRUE(uart.output().empty());
  // Status register always reports ready.
  EXPECT_EQ(uart.read(4, 4).data, 1u);
}

TEST(Uart, BadOffsetWriteFaults) {
  Uart uart;
  EXPECT_TRUE(uart.write(0x8, 1, 4).fault);
}

TEST(Timer, CountsWhenEnabled) {
  Timer timer;
  for (int i = 0; i < 3; ++i) timer.tick();
  EXPECT_EQ(timer.read(0, 4).data, 3u);
  timer.write(4, 0, 4);  // disable
  timer.tick();
  EXPECT_EQ(timer.count(), 3u);
  timer.write(4, 1, 4);  // enable
  timer.tick();
  EXPECT_EQ(timer.count(), 4u);
}

TEST(Timer, CountWritable) {
  Timer timer;
  timer.write(0, 100, 4);
  EXPECT_EQ(timer.count(), 100u);
}

}  // namespace
}  // namespace clockmark::soc
