// The detect::Session facade: bit-identity against the deprecated
// sim::run_detection shim, streamed ≡ batch under every SyncPolicy
// (including the chunked blind lock), trace-file round trips with the v2
// capture metadata, and v1 compatibility.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "attack/desync.h"
#include "detect/session.h"
#include "measure/trace_io.h"
#include "runtime/executor.h"
#include "sim/experiment.h"
#include "stream/trace_source.h"
#include "sync/warp.h"

namespace {

using namespace clockmark;
using sim::ChipModel;
using sim::Scenario;
using sim::ScenarioConfig;

ScenarioConfig fast_config(ChipModel chip, std::size_t cycles = 20000) {
  ScenarioConfig cfg = chip == ChipModel::kChip1 ? sim::chip1_default()
                                                 : sim::chip2_default();
  cfg.trace_cycles = cycles;
  // Short traces need a crisper measurement to keep tests deterministic.
  cfg.acquisition.scope.noise_v_rms = 2e-3;
  cfg.acquisition.probe.noise_v_rms = 0.5e-3;
  return cfg;
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

void expect_identical(const cpa::DetectionResult& a,
                      const cpa::DetectionResult& b) {
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.spectrum.rho, b.spectrum.rho);  // bit-identical
  EXPECT_EQ(a.spectrum.peak_rotation, b.spectrum.peak_rotation);
  EXPECT_EQ(a.spectrum.peak_z, b.spectrum.peak_z);
}

TEST(DetectFacade, ScenarioRunMatchesDeprecatedShimBitExactly) {
  for (const ChipModel chip : {ChipModel::kChip1, ChipModel::kChip2}) {
    const Scenario sc(fast_config(chip));
    const auto shim = sim::run_detection(sc, 0);
    const detect::Report report = detect::Session().run(sc, 0);
    expect_identical(report.detection, shim.detection);
    EXPECT_EQ(report.detected, shim.detection.detected);
    ASSERT_TRUE(report.scenario.has_value());
    EXPECT_EQ(report.scenario->acquisition.per_cycle_power_w,
              shim.scenario.acquisition.per_cycle_power_w);
    EXPECT_FALSE(report.sync.has_value());  // triggered: no correction
  }
}

TEST(DetectFacade, BatchSpanMatchesScenarioOverload) {
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);
  const detect::Report via_scenario = detect::Session().run(sc, 0);
  const detect::Session bound({}, r.pattern);
  const detect::Report via_span = bound.run(r.acquisition.per_cycle_power_w);
  expect_identical(via_span.detection, via_scenario.detection);
  EXPECT_EQ(via_span.cycles, r.acquisition.per_cycle_power_w.size());
}

TEST(DetectFacade, UnboundPatternThrows) {
  const detect::Session session;
  const std::vector<double> y(100, 1.0);
  EXPECT_THROW(session.run(y), std::logic_error);
}

TEST(DetectFacade, StreamedTriggeredMatchesBatchBitExactly) {
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);

  detect::Request request;
  request.streaming.early_stop = false;
  request.streaming.chunk_cycles = 1234;
  const detect::Session session(request, r.pattern);

  const detect::Report batch = session.run(r.acquisition.per_cycle_power_w);
  stream::ScenarioSource source(sc, 0, 1234);
  const detect::Report streamed = session.run(source);

  expect_identical(streamed.detection, batch.detection);
  ASSERT_TRUE(streamed.stream.has_value());
  EXPECT_FALSE(streamed.stream->decision.decided);
}

TEST(DetectFacade, StreamedKnownOffsetMatchesBatchBitExactly) {
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);
  const auto& y = r.acquisition.per_cycle_power_w;

  attack::DesyncAttack a;
  a.kind = attack::DesyncKind::kFixedOffset;
  a.offset_cycles = 17.3;
  const std::vector<double> attacked = attack::apply_desync(y, a);

  detect::Request request;
  request.sync = sync::SyncPolicy::kKnownOffset;
  // known_warp is the correction: the inverse of the capture's shift.
  request.known_warp.offset_cycles = -a.offset_cycles;
  request.streaming.early_stop = false;
  const detect::Session session(request, r.pattern);

  const detect::Report batch = session.run(attacked);
  ASSERT_TRUE(batch.sync.has_value());
  EXPECT_EQ(batch.sync->correction.offset_cycles, -a.offset_cycles);

  auto chunks = stream::chop(attacked, 999);
  std::size_t i = 0;
  stream::CallbackSource source(
      [&]() -> std::optional<stream::Chunk> {
        if (i >= chunks.size()) return std::nullopt;
        return chunks[i++];
      },
      attacked.size());
  const detect::Report streamed = session.run(source);
  expect_identical(streamed.detection, batch.detection);
}

TEST(DetectFacade, ChunkedBlindLockMatchesBatchBlindBitExactly) {
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);
  attack::DesyncAttack a;
  a.kind = attack::DesyncKind::kResample;
  a.ratio = 1.0 + 80e-6;
  const std::vector<double> attacked =
      attack::apply_desync(r.acquisition.per_cycle_power_w, a);

  detect::Request request;
  request.sync = sync::SyncPolicy::kBlind;
  request.streaming.early_stop = false;
  // Lock window >= the stream: the lock runs on the full trace at
  // finalize, which is exactly the batch blind path.
  request.lock_cycles = attacked.size();
  const detect::Session session(request, r.pattern);

  const detect::Report batch = session.run(attacked);
  ASSERT_TRUE(batch.sync.has_value());
  EXPECT_TRUE(batch.sync->locked);

  auto chunks = stream::chop(attacked, 2048);
  std::size_t i = 0;
  stream::CallbackSource source(
      [&]() -> std::optional<stream::Chunk> {
        if (i >= chunks.size()) return std::nullopt;
        return chunks[i++];
      },
      attacked.size());
  const detect::Report streamed = session.run(source);
  ASSERT_TRUE(streamed.sync.has_value());
  EXPECT_EQ(streamed.sync->correction.ratio, batch.sync->correction.ratio);
  EXPECT_EQ(streamed.sync->peak_z, batch.sync->peak_z);
  expect_identical(streamed.detection, batch.detection);
}

TEST(DetectFacade, MidStreamBlindLockStillDetects) {
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);
  attack::DesyncAttack a;
  a.kind = attack::DesyncKind::kFixedOffset;
  a.offset_cycles = 11.6;
  const std::vector<double> attacked =
      attack::apply_desync(r.acquisition.per_cycle_power_w, a);

  detect::Request request;
  request.sync = sync::SyncPolicy::kBlind;
  request.streaming.early_stop = false;
  request.lock_cycles = 2 * r.pattern.size();  // locks mid-stream
  const detect::Session session(request, r.pattern);

  auto chunks = stream::chop(attacked, 1024);
  std::size_t i = 0;
  stream::CallbackSource source(
      [&]() -> std::optional<stream::Chunk> {
        if (i >= chunks.size()) return std::nullopt;
        return chunks[i++];
      },
      attacked.size());
  const detect::Report streamed = session.run(source);
  ASSERT_TRUE(streamed.sync.has_value());
  EXPECT_TRUE(streamed.sync->locked);
  EXPECT_TRUE(streamed.detected);
}

TEST(TraceIo, BinaryV2RoundTripsValuesAndMeta) {
  const std::string path = temp_path("trace_v2.cmtrace");
  const std::vector<double> y = {1.5, -2.25, 3.125e-3, 0.0, 7.75};
  measure::TraceMeta meta;
  meta.clock_hz = 1e7;
  meta.sample_rate_hz = 5e8;
  meta.trigger_offset_cycles = 0.375;
  measure::write_trace_binary(path, y, meta);

  measure::TraceFileReader reader(path);
  EXPECT_TRUE(reader.binary());
  EXPECT_EQ(reader.format_version(), 2);
  ASSERT_TRUE(reader.total_cycles().has_value());
  EXPECT_EQ(*reader.total_cycles(), y.size());
  EXPECT_EQ(reader.meta().clock_hz, meta.clock_hz);
  EXPECT_EQ(reader.meta().sample_rate_hz, meta.sample_rate_hz);
  EXPECT_EQ(reader.meta().trigger_offset_cycles,
            meta.trigger_offset_cycles);

  measure::TraceMeta read_meta;
  EXPECT_EQ(measure::read_trace(path, &read_meta), y);  // bit-identical
  EXPECT_EQ(read_meta.trigger_offset_cycles, meta.trigger_offset_cycles);
}

TEST(TraceIo, CsvRoundTripsMetaAsCommentLines) {
  const std::string path = temp_path("trace_meta.csv");
  const std::vector<double> y = {0.25, 1.0 / 3.0, -17.5};
  measure::TraceMeta meta;
  meta.trigger_offset_cycles = 12.375;
  measure::write_trace_csv(path, y, meta);

  measure::TraceFileReader reader(path);
  EXPECT_FALSE(reader.binary());
  EXPECT_EQ(reader.format_version(), 2);
  EXPECT_EQ(reader.meta().trigger_offset_cycles, 12.375);
  EXPECT_EQ(reader.meta().clock_hz, 0.0);  // unset keys stay default
  EXPECT_EQ(measure::read_trace(path), y);
}

TEST(TraceIo, ReadsLegacyV1BinaryAndBareCsv) {
  // A CMTRACE1 file written by the previous format version.
  const std::string bin = temp_path("trace_v1.cmtrace");
  const std::vector<double> y = {4.5, -1.25, 0.5};
  {
    std::ofstream out(bin, std::ios::binary);
    out.write("CMTRACE1", 8);
    const std::uint64_t count = y.size();
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    out.write(reinterpret_cast<const char*>(y.data()),
              static_cast<std::streamsize>(y.size() * sizeof(double)));
  }
  measure::TraceFileReader reader(bin);
  EXPECT_TRUE(reader.binary());
  EXPECT_EQ(reader.format_version(), 1);
  EXPECT_EQ(reader.meta().trigger_offset_cycles, 0.0);
  EXPECT_EQ(measure::read_trace(bin), y);

  // A bare CSV with ordinary comments is still version 1 / no meta.
  const std::string csv = temp_path("trace_v1.csv");
  {
    std::ofstream out(csv);
    out << "# plain comment, not metadata\n0.5\n1.5 # trailing\n\n2.5\n";
  }
  measure::TraceFileReader csv_reader(csv);
  EXPECT_EQ(csv_reader.format_version(), 1);
  const std::vector<double> expect = {0.5, 1.5, 2.5};
  EXPECT_EQ(measure::read_trace(csv), expect);
}

TEST(DetectFile, DesyncedTraceRoundTripAndMetaDrivenCorrection) {
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);

  // A capture that started 12.4 cycles late, persisted with its offset.
  attack::DesyncAttack a;
  a.kind = attack::DesyncKind::kFixedOffset;
  a.offset_cycles = 12.4;
  const std::vector<double> attacked =
      attack::apply_desync(r.acquisition.per_cycle_power_w, a);
  measure::TraceMeta meta;
  meta.trigger_offset_cycles = a.offset_cycles;
  const std::string path = temp_path("desynced.cmtrace");
  measure::write_trace_binary(path, attacked, meta);

  // ReplaySource surfaces the metadata.
  stream::ReplaySource replay(path, 512);
  EXPECT_EQ(replay.meta().trigger_offset_cycles, a.offset_cycles);

  // run_file under the default (triggered) request upgrades to the
  // recorded known offset, applied as a correction (negated: the meta
  // records how late the capture started, the warp undoes it)...
  detect::Request request;
  request.streaming.early_stop = false;
  const detect::Session session(request, r.pattern);
  const detect::Report from_file = session.run_file(path);
  ASSERT_TRUE(from_file.sync.has_value());
  EXPECT_EQ(from_file.sync->correction.offset_cycles, -a.offset_cycles);

  // ... actually realigns the trace: the corrected run recovers the
  // aligned capture's peak rotation exactly (a wrong-signed
  // "correction" shifts the trace by 2 * offset and moves the peak by
  // ~25 rotations here) and keeps the aligned detection margin (same
  // bound as the blind-sync tests)...
  const detect::Report aligned =
      detect::Session(request, r.pattern)
          .run(r.acquisition.per_cycle_power_w);
  EXPECT_EQ(from_file.detection.spectrum.peak_rotation,
            aligned.detection.spectrum.peak_rotation);
  EXPECT_GE(from_file.detection.spectrum.peak_z,
            0.9 * aligned.detection.spectrum.peak_z);

  // ... and matches the in-memory known-offset path bit for bit.
  detect::Request known = request;
  known.sync = sync::SyncPolicy::kKnownOffset;
  known.known_warp.offset_cycles = -a.offset_cycles;
  const detect::Report batch =
      detect::Session(known, r.pattern).run(attacked);
  expect_identical(from_file.detection, batch.detection);

  // Opting out of the metadata keeps the raw triggered decision.
  detect::Request raw = request;
  raw.use_file_meta = false;
  const detect::Report untouched =
      detect::Session(raw, r.pattern).run_file(path);
  EXPECT_FALSE(untouched.sync.has_value());
}

TEST(TraceIo, TruncatedBinaryPayloadIsRejectedAtOpen) {
  const std::string path = temp_path("truncated.cmtrace");
  const std::vector<double> y(64, 1.25);
  measure::TraceMeta meta;
  meta.trigger_offset_cycles = 2.5;
  measure::write_trace_binary(path, y, meta);

  // Hand-truncate the file: drop the last 24 samples' bytes.
  std::error_code ec;
  const auto full = std::filesystem::file_size(path, ec);
  ASSERT_FALSE(ec);
  std::filesystem::resize_file(path, full - 24 * sizeof(double), ec);
  ASSERT_FALSE(ec);

  try {
    measure::TraceFileReader reader(path);
    FAIL() << "truncated CMTRACE2 must be rejected at open";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    EXPECT_NE(what.find("64 cycles"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
  // The streaming front door rejects it identically.
  EXPECT_THROW(stream::ReplaySource(path, 16), std::runtime_error);
}

TEST(TraceIo, TruncatedLegacyV1PayloadIsRejectedAtOpen) {
  const std::string path = temp_path("truncated_v1.cmtrace");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("CMTRACE1", 8);
    const std::uint64_t claimed = 100;  // header lies: only 3 samples follow
    out.write(reinterpret_cast<const char*>(&claimed), sizeof(claimed));
    const double samples[3] = {1.0, 2.0, 3.0};
    out.write(reinterpret_cast<const char*>(samples), sizeof(samples));
  }
  EXPECT_THROW(measure::TraceFileReader{path}, std::runtime_error);
}

TEST(TraceIo, TrailingGarbageAfterPayloadIsRejected) {
  const std::string path = temp_path("trailing.cmtrace");
  const std::vector<double> y = {0.5, 1.5, 2.5};
  measure::write_trace_binary(path, y, {});
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("junk", 4);  // 4 stray bytes after the payload
  }
  try {
    measure::TraceFileReader reader(path);
    FAIL() << "trailing bytes must be rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("corrupt"), std::string::npos) << what;
    EXPECT_NE(what.find("4 trailing bytes"), std::string::npos) << what;
  }
}

TEST(EngineCacheLru, HitsMissesAndPointerIdentity) {
  detect::EngineCache cache(2);
  const std::vector<double> a = {1.0, -1.0, 1.0, -1.0};
  const std::vector<double> b = {1.0, 1.0, -1.0, -1.0};

  bool hit = true;
  const auto first = cache.acquire(a, &hit);
  ASSERT_NE(first, nullptr);
  EXPECT_FALSE(hit);
  const auto again = cache.acquire(a, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), again.get());  // same engine, not a rebuild
  cache.acquire(b, &hit);
  EXPECT_FALSE(hit);

  const detect::EngineCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_EQ(cache.acquire({}, &hit), nullptr);  // empty pattern: no engine
}

TEST(EngineCacheLru, EvictsLeastRecentlyUsedAtCapacity) {
  detect::EngineCache cache(2);
  const std::vector<double> a = {1.0, -1.0};
  const std::vector<double> b = {2.0, -2.0};
  const std::vector<double> c = {3.0, -3.0};

  cache.acquire(a);
  cache.acquire(b);
  cache.acquire(a);  // refresh a: b is now the LRU
  cache.acquire(c);  // evicts b
  EXPECT_EQ(cache.stats().evictions, 1u);

  bool hit = false;
  cache.acquire(a, &hit);
  EXPECT_TRUE(hit);  // a survived
  cache.acquire(b, &hit);
  EXPECT_FALSE(hit);  // b was the victim
}

TEST(EngineCacheLru, SharedEngineVerdictBitIdenticalToPrivateOne) {
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);
  attack::DesyncAttack a;
  a.kind = attack::DesyncKind::kFixedOffset;
  a.offset_cycles = 9.8;
  const std::vector<double> attacked =
      attack::apply_desync(r.acquisition.per_cycle_power_w, a);

  detect::Request request;
  request.sync = sync::SyncPolicy::kBlind;

  // Two sessions over one cache: the second is served the first's
  // engine, and the verdict is bit-identical to a cold session's.
  const auto shared = std::make_shared<detect::EngineCache>();
  const detect::Session cold(request, r.pattern, shared);
  const detect::Report baseline = cold.run(attacked);
  const detect::Session warm(request, r.pattern, shared);
  const detect::Report reused = warm.run(attacked);
  expect_identical(reused.detection, baseline.detection);
  EXPECT_EQ(shared->stats().misses, 1u);
  EXPECT_GE(shared->stats().hits, 1u);
}

TEST(DetectFacade, ConcurrentSessionReuseBitIdentical) {
  // N threads hammering one Session (and through it one EngineCache /
  // one CandidateEngine) must each produce the serial verdict bit for
  // bit — the data-race half of that claim is what the tier-1 TSan run
  // of this test checks.
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);
  attack::DesyncAttack a;
  a.kind = attack::DesyncKind::kFixedOffset;
  a.offset_cycles = 21.3;
  const std::vector<double> attacked =
      attack::apply_desync(r.acquisition.per_cycle_power_w, a);

  detect::Request request;
  request.sync = sync::SyncPolicy::kBlind;
  const detect::Session session(request, r.pattern);
  const detect::Report serial = session.run(attacked);

  constexpr int kThreads = 4;
  std::vector<detect::Report> reports(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back(
          [&, t] { reports[static_cast<std::size_t>(t)] =
                       session.run(attacked); });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (const detect::Report& report : reports) {
    expect_identical(report.detection, serial.detection);
    ASSERT_TRUE(report.sync.has_value());
    EXPECT_EQ(report.sync->peak_z, serial.sync->peak_z);
  }
  // One engine build total; every other run was a cache hit.
  EXPECT_EQ(session.engines()->stats().misses, 1u);
  EXPECT_GE(session.engines()->stats().hits,
            static_cast<std::size_t>(kThreads));
}

TEST(DetectFacade, ParallelExecutorBitIdenticalOnBlindBatch) {
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);
  attack::DesyncAttack a;
  a.kind = attack::DesyncKind::kFixedOffset;
  a.offset_cycles = 25.4;
  const std::vector<double> attacked =
      attack::apply_desync(r.acquisition.per_cycle_power_w, a);

  detect::Request request;
  request.sync = sync::SyncPolicy::kBlind;
  const detect::Session session(request, r.pattern);
  const detect::Report serial = session.run(attacked);
  runtime::Executor executor(8);
  const detect::Report parallel = session.run(attacked, &executor);
  expect_identical(parallel.detection, serial.detection);
  ASSERT_TRUE(parallel.sync.has_value());
  EXPECT_EQ(parallel.sync->peak_z, serial.sync->peak_z);
}

}  // namespace
