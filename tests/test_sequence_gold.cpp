#include "sequence/gold.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sequence/polynomials.h"
#include "sequence/properties.h"

namespace clockmark::sequence {
namespace {

class PreferredPairTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PreferredPairTest, BothPolynomialsAreMaximal) {
  const unsigned w = GetParam();
  const auto pair = preferred_pair(w);
  Lfsr a(w, pair.taps_a, 1);
  Lfsr b(w, pair.taps_b, 1);
  const auto expected = static_cast<std::size_t>(maximal_period(w));
  EXPECT_EQ(a.measure_period(), expected);
  EXPECT_EQ(b.measure_period(), expected);
}

TEST_P(PreferredPairTest, CrossCorrelationWithinGoldBound) {
  const unsigned w = GetParam();
  const auto pair = preferred_pair(w);
  const std::size_t p = (1u << w) - 1u;
  const auto sa = Lfsr(w, pair.taps_a, 0xffffffffu).generate(p);
  const auto sb = Lfsr(w, pair.taps_b, 0xffffffffu).generate(p);
  // Gold bound t(n): 2^((n+2)/2)+1 for even n, 2^((n+1)/2)+1 for odd n.
  const double bound =
      (w % 2 == 1) ? static_cast<double>(1u << ((w + 1) / 2)) + 1.0
                   : static_cast<double>(1u << ((w + 2) / 2)) + 1.0;
  EXPECT_LE(peak_cross_correlation(sa, sb), bound);
}

INSTANTIATE_TEST_SUITE_P(Widths, PreferredPairTest,
                         ::testing::Values(5u, 6u, 7u, 9u, 10u));

TEST(PreferredPair, UnsupportedWidthThrows) {
  EXPECT_THROW(preferred_pair(4), std::out_of_range);
  EXPECT_THROW(preferred_pair(8), std::out_of_range);
  EXPECT_THROW(preferred_pair(12), std::out_of_range);
}

TEST(GoldCode, DistinctShiftsGiveDistinctCodes) {
  const std::size_t p = 127;
  std::set<std::vector<bool>> codes;
  for (std::uint32_t shift = 0; shift < 10; ++shift) {
    codes.insert(gold_code(7, shift, p));
  }
  EXPECT_EQ(codes.size(), 10u);
}

TEST(GoldCode, PairwiseCrossCorrelationBounded) {
  // Any two members of the Gold family stay within t(n) of each other.
  const unsigned w = 7;
  const std::size_t p = 127;
  const double bound = static_cast<double>(1u << ((w + 1) / 2)) + 1.0;
  const auto g0 = gold_code(w, 0, p);
  for (std::uint32_t shift : {1u, 5u, 60u, 126u}) {
    const auto g = gold_code(w, shift, p);
    EXPECT_LE(peak_cross_correlation(g0, g), bound) << "shift " << shift;
  }
}

TEST(GoldCode, IsBalancedEnoughForWatermarking) {
  // Gold codes are not perfectly balanced like m-sequences, but the
  // imbalance is bounded by t(n); the watermark duty cycle stays ~50 %.
  const auto g = gold_code(9, 3, 511);
  long ones = 0;
  for (const bool b : g) ones += b ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / 511.0, 0.5, 0.07);
}

TEST(PeakCrossCorrelation, IdenticalSequencesPeakAtLength) {
  Lfsr l(7, maximal_taps(7), 1);
  const auto s = l.generate(127);
  EXPECT_DOUBLE_EQ(peak_cross_correlation(s, s), 127.0);
}

TEST(PeakCrossCorrelation, MismatchedThrows) {
  std::vector<bool> a(4), b(5);
  EXPECT_THROW(peak_cross_correlation(a, b), std::invalid_argument);
  std::vector<bool> empty;
  EXPECT_THROW(peak_cross_correlation(empty, empty),
               std::invalid_argument);
}

}  // namespace
}  // namespace clockmark::sequence
