#include "sim/scenario.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace clockmark::sim {
namespace {

ScenarioConfig fast_config(ChipModel chip) {
  ScenarioConfig cfg =
      chip == ChipModel::kChip1 ? chip1_default() : chip2_default();
  cfg.trace_cycles = 20000;
  // Short traces need a crisper measurement to keep tests deterministic.
  cfg.acquisition.scope.noise_v_rms = 2e-3;
  cfg.acquisition.probe.noise_v_rms = 0.5e-3;
  return cfg;
}

TEST(Scenario, CharacterisationHasPaperAmplitude) {
  Scenario sc(fast_config(ChipModel::kChip1));
  const auto& ch = sc.characterization();
  EXPECT_EQ(ch.period, 4095u);
  // Watermark block active power ~1.57 mW, idle ~0.03 mW.
  EXPECT_NEAR(ch.mean_active_w, 1.57e-3, 0.1e-3);
  EXPECT_LT(ch.mean_idle_w, 0.1e-3);
}

TEST(Scenario, ResultShapes) {
  auto cfg = fast_config(ChipModel::kChip1);
  Scenario sc(cfg);
  const auto r = sc.run(0);
  EXPECT_EQ(r.pattern.size(), 4095u);
  EXPECT_EQ(r.background_power.cycles(), cfg.trace_cycles);
  EXPECT_EQ(r.watermark_power.cycles(), cfg.trace_cycles);
  EXPECT_EQ(r.total_power.cycles(), cfg.trace_cycles);
  EXPECT_EQ(r.acquisition.per_cycle_power_w.size(), cfg.trace_cycles);
  EXPECT_EQ(r.true_rotation, 3800u);  // pinned by chip1_default
}

TEST(Scenario, TotalIsBackgroundPlusWatermark) {
  Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(r.total_power[i],
                r.background_power[i] + r.watermark_power[i], 1e-12);
  }
}

TEST(Scenario, InactiveWatermarkOnlyLeaks) {
  auto cfg = fast_config(ChipModel::kChip1);
  cfg.watermark_active = false;
  Scenario sc(cfg);
  const auto r = sc.run(0);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_LT(r.watermark_power[i], 1e-6);  // leakage only
  }
}

TEST(Scenario, WatermarkPowerFollowsPattern) {
  Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);
  const auto& ch = sc.characterization();
  for (std::size_t i = 0; i < 500; ++i) {
    const bool bit =
        ch.wmark_bits[(i + r.true_rotation) % ch.period];
    if (bit) {
      EXPECT_GT(r.watermark_power[i], 1e-3) << "cycle " << i;
    } else {
      EXPECT_LT(r.watermark_power[i], 0.2e-3) << "cycle " << i;
    }
  }
}

TEST(Scenario, UnpinnedPhaseVariesAcrossRepetitions) {
  auto cfg = fast_config(ChipModel::kChip1);
  cfg.phase_offset.reset();
  Scenario sc(cfg);
  const auto r0 = sc.run(0);
  const auto r1 = sc.run(1);
  EXPECT_NE(r0.true_rotation, r1.true_rotation);
  EXPECT_LT(r0.true_rotation, 4095u);
}

TEST(Scenario, RepetitionsChangeNoiseNotBackgroundChip1) {
  Scenario sc(fast_config(ChipModel::kChip1));
  const auto r0 = sc.run(0);
  const auto r1 = sc.run(1);
  // Chip 1 background is deterministic (same program, same chip)...
  EXPECT_EQ(r0.background_power.values(), r1.background_power.values());
  // ...but the measurement noise differs per repetition.
  EXPECT_NE(r0.acquisition.per_cycle_power_w,
            r1.acquisition.per_cycle_power_w);
}

TEST(Scenario, Chip2BackgroundVariesPerRepetition) {
  Scenario sc(fast_config(ChipModel::kChip2));
  const auto r0 = sc.run(0);
  const auto r1 = sc.run(1);
  EXPECT_NE(r0.background_power.values(), r1.background_power.values());
}

TEST(Scenario, Chip2HasHigherBackground) {
  Scenario s1(fast_config(ChipModel::kChip1));
  Scenario s2(fast_config(ChipModel::kChip2));
  const auto r1 = s1.run(0);
  const auto r2 = s2.run(0);
  EXPECT_GT(r2.background_power.average_w(),
            3.0 * r1.background_power.average_w());
}

TEST(Scenario, DefaultsMatchPaperSetup) {
  const auto c1 = chip1_default();
  EXPECT_EQ(c1.trace_cycles, 300000u);  // paper: 300,000 cycles per rho
  EXPECT_EQ(c1.watermark.words, 32u);
  EXPECT_EQ(c1.watermark.bits_per_word, 32u);
  EXPECT_EQ(c1.watermark.wgc.width, 12u);
  EXPECT_EQ(c1.acquisition.waveform.samples_per_cycle, 50u);  // 500 MS/s
  EXPECT_NEAR(c1.acquisition.shunt.resistance_ohm(), 0.270, 1e-9);
  EXPECT_EQ(c1.phase_offset, 3800u);
  const auto c2 = chip2_default();
  EXPECT_EQ(c2.phase_offset, 2400u);
  EXPECT_GT(c2.acquisition.scope.noise_v_rms,
            c1.acquisition.scope.noise_v_rms);
}

}  // namespace
}  // namespace clockmark::sim
