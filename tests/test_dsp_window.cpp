#include "dsp/window.h"

#include <gtest/gtest.h>

#include <cmath>

namespace clockmark::dsp {
namespace {

class WindowTest : public ::testing::TestWithParam<WindowKind> {};

TEST_P(WindowTest, SymmetricAndBounded) {
  const auto w = make_window(GetParam(), 101);
  ASSERT_EQ(w.size(), 101u);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], -1e-12);
    EXPECT_LE(w[i], 1.0 + 1e-12);
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12) << "asymmetric at " << i;
  }
}

TEST_P(WindowTest, PeakAtCentre) {
  const auto w = make_window(GetParam(), 101);
  EXPECT_NEAR(w[50], GetParam() == WindowKind::kRectangular ? 1.0 : w[50],
              1e-12);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(w[i], w[50] + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, WindowTest,
                         ::testing::Values(WindowKind::kRectangular,
                                           WindowKind::kHann,
                                           WindowKind::kHamming,
                                           WindowKind::kBlackman));

TEST(Window, RectangularIsAllOnes) {
  const auto w = make_window(WindowKind::kRectangular, 10);
  for (const double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, HannEndsAtZero) {
  const auto w = make_window(WindowKind::kHann, 11);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[5], 1.0, 1e-12);
}

TEST(Window, CoherentGains) {
  EXPECT_NEAR(coherent_gain(make_window(WindowKind::kRectangular, 1000)),
              1.0, 1e-12);
  EXPECT_NEAR(coherent_gain(make_window(WindowKind::kHann, 100001)), 0.5,
              1e-4);
  EXPECT_NEAR(coherent_gain(make_window(WindowKind::kHamming, 100001)),
              0.54, 1e-4);
}

TEST(Window, ApplyMultipliesInPlace) {
  std::vector<double> signal(11, 2.0);
  const auto w = make_window(WindowKind::kHann, 11);
  apply_window(signal, w);
  EXPECT_NEAR(signal[5], 2.0, 1e-12);
  EXPECT_NEAR(signal[0], 0.0, 1e-12);
}

TEST(Window, ApplySizeMismatchThrows) {
  std::vector<double> signal(5, 1.0);
  const auto w = make_window(WindowKind::kHann, 6);
  EXPECT_THROW(apply_window(signal, w), std::invalid_argument);
}

TEST(Window, DegenerateLengths) {
  EXPECT_EQ(make_window(WindowKind::kHann, 0).size(), 0u);
  const auto w1 = make_window(WindowKind::kHann, 1);
  ASSERT_EQ(w1.size(), 1u);
  EXPECT_DOUBLE_EQ(w1[0], 1.0);
}

}  // namespace
}  // namespace clockmark::dsp
