// The batched (SoA) acquisition kernel's exactness contract
// (measure/batch_kernel.h): carrying R repetitions as interleaved lanes
// through one block pass is a scheduling change, not a numerical one.
// Every lane must reproduce the per-repetition AcquisitionChain bit for
// bit — at any lane count (full 4-lane groups, partial groups, R=1), at
// any block size, under any cache budget, and through the per-lane
// fallback for configurations the batch pass does not model.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "measure/acquisition.h"
#include "measure/batch_kernel.h"
#include "power/trace.h"
#include "util/rng.h"

namespace clockmark::measure {
namespace {

/// Deterministic ~50 mW traces with cycle-to-cycle variation; each lane
/// gets a distinct trace so cross-lane state mixups cannot cancel out.
std::vector<double> make_power(std::size_t cycles, std::uint64_t seed) {
  util::Pcg32 rng(seed, 7);
  std::vector<double> p(cycles);
  for (auto& v : p) v = 0.05 + 0.005 * rng.gaussian();
  return p;
}

void expect_bit_identical(const Acquisition& batched,
                          const Acquisition& reference) {
  ASSERT_EQ(batched.per_cycle_power_w.size(),
            reference.per_cycle_power_w.size());
  for (std::size_t i = 0; i < batched.per_cycle_power_w.size(); ++i) {
    ASSERT_EQ(batched.per_cycle_power_w[i], reference.per_cycle_power_w[i])
        << "cycle " << i;
  }
  EXPECT_EQ(batched.mean_power_w, reference.mean_power_w);
  EXPECT_EQ(batched.lsb_power_w, reference.lsb_power_w);
}

/// Per-lane oracle: the sequential chain with the lane's seed patched
/// into the config — exactly what run() did before batching existed.
Acquisition sequential_oracle(const AcquisitionConfig& config,
                              const std::vector<double>& power_w,
                              std::uint64_t noise_seed, double clock_hz) {
  AcquisitionConfig cfg = config;
  cfg.noise_seed = noise_seed;
  AcquisitionChain chain(cfg);
  return chain.measure(power::PowerTrace(power_w, clock_hz, "batch-test"));
}

constexpr double kClockHz = 10.0e6;

TEST(BatchAcquireKernel, MatchesChainBitExactAcrossLaneCounts) {
  AcquisitionConfig cfg;  // chip-I-style defaults, auto-range on
  const BatchAcquisitionKernel kernel(cfg, kClockHz);
  ASSERT_TRUE(BatchAcquisitionKernel::supports(cfg));
  // R = 1..8 covers a lone lane, partial groups (2, 3), one full 4-lane
  // group, full + partial (5..7) and two full groups.
  for (std::size_t reps = 1; reps <= 8; ++reps) {
    std::vector<std::vector<double>> powers(reps);
    std::vector<BatchLane> lanes(reps);
    for (std::size_t r = 0; r < reps; ++r) {
      powers[r] = make_power(2000, 0xC51 + r);
      lanes[r] = BatchLane{powers[r], 1000 + 17 * r};
    }
    const std::vector<Acquisition> got = kernel.run(lanes);
    ASSERT_EQ(got.size(), reps);
    for (std::size_t r = 0; r < reps; ++r) {
      SCOPED_TRACE("reps=" + std::to_string(reps) +
                   " lane=" + std::to_string(r));
      expect_bit_identical(
          got[r], sequential_oracle(cfg, powers[r], 1000 + 17 * r, kClockHz));
    }
  }
}

TEST(BatchAcquireKernel, BlockSizeDoesNotChangeBits) {
  AcquisitionConfig cfg;
  std::vector<std::vector<double>> powers(4);
  std::vector<BatchLane> lanes(4);
  for (std::size_t r = 0; r < 4; ++r) {
    powers[r] = make_power(1237, 0xB10C + r);  // odd length: ragged tail
    lanes[r] = BatchLane{powers[r], 42 + r};
  }
  const std::vector<Acquisition> baseline =
      BatchAcquisitionKernel(cfg, kClockHz).run(lanes);
  for (std::size_t block : {1u, 7u, 64u, 1237u, 5000u}) {
    AcquisitionConfig sized = cfg;
    sized.block_cycles = block;
    const std::vector<Acquisition> got =
        BatchAcquisitionKernel(sized, kClockHz).run(lanes);
    for (std::size_t r = 0; r < 4; ++r) {
      SCOPED_TRACE("block=" + std::to_string(block) +
                   " lane=" + std::to_string(r));
      expect_bit_identical(got[r], baseline[r]);
    }
  }
}

TEST(BatchAcquireKernel, CacheBudgetDegradesWidthNotBits) {
  // Shrinking the waveform-cache budget narrows the lane groups
  // (4 -> 2 -> 1 -> per-lane fallback); results must never change.
  AcquisitionConfig cfg;
  std::vector<std::vector<double>> powers(5);
  std::vector<BatchLane> lanes(5);
  for (std::size_t r = 0; r < 5; ++r) {
    powers[r] = make_power(1500, 0xCAFE + r);
    lanes[r] = BatchLane{powers[r], 7 + r};
  }
  const std::vector<Acquisition> baseline =
      BatchAcquisitionKernel(cfg, kClockHz).run(lanes);
  // 50 samples per cycle at the default 500 MS/s scope on a 10 MHz clock.
  const std::size_t lane_bytes = 1500 * 50 * sizeof(double);
  for (const std::size_t budget :
       {4 * lane_bytes, 2 * lane_bytes, lane_bytes, std::size_t{1}}) {
    BatchAcquisitionKernel kernel(cfg, kClockHz);
    kernel.set_cache_budget_bytes(budget);
    const std::vector<Acquisition> got = kernel.run(lanes);
    for (std::size_t r = 0; r < 5; ++r) {
      SCOPED_TRACE("budget=" + std::to_string(budget) +
                   " lane=" + std::to_string(r));
      expect_bit_identical(got[r], baseline[r]);
    }
  }
}

TEST(BatchAcquireKernel, FixedRangeRunsBatched) {
  AcquisitionConfig cfg;
  cfg.range_policy = RangePolicy::kFixedRange;
  cfg.scope.full_scale_v = 0.2;
  ASSERT_TRUE(BatchAcquisitionKernel::supports(cfg));
  const BatchAcquisitionKernel kernel(cfg, kClockHz);
  std::vector<std::vector<double>> powers(4);
  std::vector<BatchLane> lanes(4);
  for (std::size_t r = 0; r < 4; ++r) {
    powers[r] = make_power(1800, 0xF1 + r);
    lanes[r] = BatchLane{powers[r], 90 + r};
  }
  const std::vector<Acquisition> got = kernel.run(lanes);
  for (std::size_t r = 0; r < 4; ++r) {
    SCOPED_TRACE("lane=" + std::to_string(r));
    expect_bit_identical(
        got[r], sequential_oracle(cfg, powers[r], 90 + r, kClockHz));
  }
}

TEST(BatchAcquireKernel, UnsupportedConfigsFallBackBitExact) {
  // Trigger-offset capture and the PDN-less chain are out of the batch
  // pass's model; run() must still produce chain-identical results via
  // the per-lane fallback.
  for (int variant = 0; variant < 2; ++variant) {
    AcquisitionConfig cfg;
    if (variant == 0) {
      cfg.trigger_sim = TriggerSim::kRandomOffset;
    } else {
      cfg.enable_pdn_filter = false;
    }
    ASSERT_FALSE(BatchAcquisitionKernel::supports(cfg));
    const BatchAcquisitionKernel kernel(cfg, kClockHz);
    std::vector<std::vector<double>> powers(3);
    std::vector<BatchLane> lanes(3);
    for (std::size_t r = 0; r < 3; ++r) {
      powers[r] = make_power(900, 0xAB + r);
      lanes[r] = BatchLane{powers[r], 5 + r};
    }
    const std::vector<Acquisition> got = kernel.run(lanes);
    for (std::size_t r = 0; r < 3; ++r) {
      SCOPED_TRACE("variant=" + std::to_string(variant) +
                   " lane=" + std::to_string(r));
      expect_bit_identical(
          got[r], sequential_oracle(cfg, powers[r], 5 + r, kClockHz));
    }
  }
}

TEST(BatchAcquireKernel, UnequalLaneLengthsFallBack) {
  AcquisitionConfig cfg;
  const BatchAcquisitionKernel kernel(cfg, kClockHz);
  const std::vector<double> a = make_power(1000, 1);
  const std::vector<double> b = make_power(800, 2);
  const std::vector<BatchLane> lanes = {BatchLane{a, 3}, BatchLane{b, 4}};
  const std::vector<Acquisition> got = kernel.run(lanes);
  ASSERT_EQ(got.size(), 2u);
  expect_bit_identical(got[0], sequential_oracle(cfg, a, 3, kClockHz));
  expect_bit_identical(got[1], sequential_oracle(cfg, b, 4, kClockHz));
}

TEST(BatchAcquireKernel, EmptyRunAndValidation) {
  AcquisitionConfig cfg;
  const BatchAcquisitionKernel kernel(cfg, kClockHz);
  EXPECT_TRUE(kernel.run({}).empty());
  EXPECT_THROW(BatchAcquisitionKernel(cfg, 0.0), std::invalid_argument);
  AcquisitionConfig bad = cfg;
  bad.scope.resolution_bits = 1;
  EXPECT_THROW(BatchAcquisitionKernel(bad, kClockHz), std::invalid_argument);
}

}  // namespace
}  // namespace clockmark::measure
