// The register-blocked multi-rotation kernel (cpa/rotations_blocked.cpp)
// carries a bit-identity contract: every lane must return exactly the
// bits of the scalar correlate_at for its rotation — not merely close.
// These tests sweep the block geometry (pattern widths around the lane
// count, every remainder phase, every lane count) so both the contiguous
// fast path and the wrap path are exercised, plus the degenerate inputs
// (zero variance, short and empty measurements) where the kernel must
// reproduce correlate_at's guards.
#include "cpa/correlation.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "sequence/lfsr.h"
#include "sequence/polynomials.h"
#include "util/rng.h"

namespace clockmark::cpa {
namespace {

std::vector<double> m_sequence_pattern(unsigned width) {
  sequence::Lfsr lfsr(width, sequence::maximal_taps(width), 1);
  std::vector<double> p((1u << width) - 1u);
  for (auto& v : p) v = lfsr.step() ? 1.0 : 0.0;
  return p;
}

std::vector<double> random_values(std::size_t n, std::uint64_t seed) {
  util::Pcg32 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.gaussian(0.0, 1.0);
  return v;
}

/// EXPECT_EQ (exact bits) between every blocked lane and correlate_at,
/// for all first_rotation phases and all lane counts up to the cap.
void expect_lanes_match(const std::vector<double>& y,
                        const std::vector<double>& pattern) {
  const std::size_t p = pattern.size();
  for (std::size_t first = 0; first < p; ++first) {
    for (std::size_t lanes = 1; lanes <= kRotationBlockLanes; ++lanes) {
      std::vector<double> rho(lanes, -2.0);
      correlate_rotations_blocked(y, pattern, first, rho);
      for (std::size_t l = 0; l < lanes; ++l) {
        const std::size_t r = (first + l) % p;
        EXPECT_EQ(rho[l], correlate_at(y, pattern, r))
            << "p=" << p << " n=" << y.size() << " first=" << first
            << " lanes=" << lanes << " lane=" << l;
      }
    }
  }
}

TEST(BlockedKernel, BitIdenticalToCorrelateAtAcrossWidthsAndPhases) {
  // Pattern lengths bracketing the lane count (1..9 around B = 8) hit
  // every fast-path/wrap-path split: p < B runs the wrap path only,
  // p = B wraps every period, p > B slides the contiguous window.
  for (std::size_t p = 1; p <= 9; ++p) {
    const std::vector<double> pattern = random_values(p, 100 + p);
    // Lengths cover n < p, n = p, a non-multiple and a longer tiling.
    for (const std::size_t n :
         {p > 1 ? p - 1 : std::size_t{1}, p, 2 * p + 3, std::size_t{57}}) {
      expect_lanes_match(random_values(n, 200 + n), pattern);
    }
  }
}

TEST(BlockedKernel, MSequenceSweepMatchesCorrelateAtAndNaiveDispatch) {
  // The chip-I shape: P = 31 m-sequence model over a realistic trace.
  const auto pattern = m_sequence_pattern(5);
  const std::size_t period = pattern.size();
  std::vector<double> y = random_values(4000, 7);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] += 0.5 * pattern[(i + 11) % period];
  }

  std::vector<double> rho(period, 0.0);
  for (std::size_t r0 = 0; r0 < period; r0 += kRotationBlockLanes) {
    const std::size_t count = std::min(kRotationBlockLanes, period - r0);
    correlate_rotations_blocked(y, pattern, r0,
                                std::span<double>(rho).subspan(r0, count));
  }
  const auto dispatched =
      correlate_rotations(y, pattern, CorrelationMethod::kNaive);
  for (std::size_t r = 0; r < period; ++r) {
    EXPECT_EQ(rho[r], correlate_at(y, pattern, r)) << "r=" << r;
    EXPECT_EQ(rho[r], dispatched[r]) << "r=" << r;
  }
}

TEST(BlockedKernel, ZeroVariancePatternScoresZero) {
  // A constant pattern window has sxx_c exactly 0 for every rotation;
  // the kernel must keep correlate_at's rho = 0 guard, not divide.
  const std::vector<double> pattern(5, 1.0);
  const std::vector<double> y = random_values(100, 3);
  expect_lanes_match(y, pattern);
  std::vector<double> rho(kRotationBlockLanes, -2.0);
  correlate_rotations_blocked(y, pattern, 0, rho);
  for (const double v : rho) EXPECT_EQ(v, 0.0);
}

TEST(BlockedKernel, ZeroVarianceMeasurementScoresZero) {
  const auto pattern = m_sequence_pattern(3);
  const std::vector<double> y(50, 2.5);  // syy = 0
  expect_lanes_match(y, pattern);
  std::vector<double> rho(3, -2.0);
  correlate_rotations_blocked(y, pattern, 1, rho);
  for (const double v : rho) EXPECT_EQ(v, 0.0);
}

TEST(BlockedKernel, MeasurementShorterThanPattern) {
  // n < p: zero full periods, the remainder window is the whole model.
  const auto pattern = m_sequence_pattern(5);  // P = 31
  expect_lanes_match(random_values(7, 17), pattern);
}

TEST(BlockedKernel, EmptyMeasurementYieldsZeros) {
  const auto pattern = m_sequence_pattern(3);
  std::vector<double> rho(4, -2.0);
  correlate_rotations_blocked(std::span<const double>{}, pattern, 2, rho);
  for (const double v : rho) EXPECT_EQ(v, 0.0);
}

TEST(BlockedKernel, RejectsOversizedBlockAndEmptyPattern) {
  const auto pattern = m_sequence_pattern(3);
  const std::vector<double> y = random_values(10, 1);
  std::vector<double> rho(kRotationBlockLanes + 1, 0.0);
  EXPECT_THROW(correlate_rotations_blocked(y, pattern, 0, rho),
               std::invalid_argument);
  std::vector<double> one(1, 0.0);
  EXPECT_THROW(
      correlate_rotations_blocked(y, std::span<const double>{}, 0, one),
      std::invalid_argument);
  // Zero lanes is a no-op, not an error (the dispatch never emits it,
  // but the contract is total).
  correlate_rotations_blocked(y, pattern, 0, std::span<double>{});
}

}  // namespace
}  // namespace clockmark::cpa
