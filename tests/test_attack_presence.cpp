#include "attack/presence.h"

#include <gtest/gtest.h>

#include "sequence/lfsr.h"
#include "sequence/polynomials.h"
#include "util/rng.h"

namespace clockmark::attack {
namespace {

std::vector<double> watermarked_trace(unsigned width, std::size_t n,
                                      std::size_t phase, double amplitude,
                                      double sigma, std::uint64_t seed) {
  sequence::Lfsr lfsr(width, sequence::maximal_taps(width), 1);
  const std::size_t period = (1u << width) - 1u;
  std::vector<bool> bits(period);
  for (auto&& b : bits) b = lfsr.step();
  util::Pcg32 rng(seed);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = (bits[(i + phase) % period] ? amplitude : 0.0) +
           rng.gaussian(2.0, sigma);
  }
  return y;
}

TEST(PresenceScan, FindsWatermarkAndItsWidth) {
  const auto y = watermarked_trace(10, 60000, 321, 0.4, 1.0, 1);
  const auto result = scan_for_watermark(y, 7, 12);
  ASSERT_TRUE(result.watermark_found);
  const auto& best = result.candidates[result.best];
  EXPECT_EQ(best.width, 10u);
  EXPECT_EQ(best.peak_rotation, 321u);
  EXPECT_TRUE(best.detected);
  // No other width should beat it.
  for (std::size_t i = 1; i < result.candidates.size(); ++i) {
    EXPECT_LE(result.candidates[i].peak_z, best.peak_z);
  }
}

TEST(PresenceScan, QuietTraceFindsNothing) {
  util::Pcg32 rng(7);
  std::vector<double> y(60000);
  for (auto& v : y) v = rng.gaussian(2.0, 1.0);
  const auto result = scan_for_watermark(y, 7, 12);
  EXPECT_FALSE(result.watermark_found);
  for (const auto& c : result.candidates) {
    EXPECT_FALSE(c.detected) << "false positive at width " << c.width;
  }
}

TEST(PresenceScan, WrongPolynomialFamilyIsNotFound) {
  // Watermark driven by the second polynomial of a preferred pair: the
  // scan (which only knows the library's table polynomial) must miss it.
  // This is precisely the defender's key-space argument.
  const unsigned w = 9;
  const std::size_t period = 511;
  sequence::Lfsr other(w, 0x59u /* x^9+x^6+x^4+x^3+1 */, 1);
  std::vector<bool> bits(period);
  for (auto&& b : bits) b = other.step();
  util::Pcg32 rng(3);
  std::vector<double> y(60000);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = (bits[i % period] ? 0.4 : 0.0) + rng.gaussian(2.0, 1.0);
  }
  const auto result = scan_for_watermark(y, 9, 9);
  ASSERT_EQ(result.candidates.size(), 1u);
  EXPECT_FALSE(result.candidates[0].detected);
}

TEST(PresenceScan, ShortTraceSkipsUnresolvableWidths) {
  const auto y = watermarked_trace(8, 300, 10, 0.4, 0.5, 9);
  // Width 12 needs 4095 cycles of trace; only widths up to 8 fit 300.
  const auto result = scan_for_watermark(y, 7, 12);
  for (const auto& c : result.candidates) {
    EXPECT_LE(c.width, 8u);
  }
}

TEST(PrimitivePolynomialCount, KnownValues) {
  // phi(2^w - 1)/w: 2 -> 1, 3 -> 2, 4 -> 2, 5 -> 6, 8 -> 16, 12 -> 144.
  EXPECT_EQ(primitive_polynomial_count(2), 1u);
  EXPECT_EQ(primitive_polynomial_count(3), 2u);
  EXPECT_EQ(primitive_polynomial_count(4), 2u);
  EXPECT_EQ(primitive_polynomial_count(5), 6u);
  EXPECT_EQ(primitive_polynomial_count(8), 16u);
  EXPECT_EQ(primitive_polynomial_count(12), 144u);
  EXPECT_EQ(primitive_polynomial_count(0), 0u);
  // Key space grows fast: a 32-bit LFSR already has ~67M polynomials.
  EXPECT_GT(primitive_polynomial_count(32), 60000000u);
}

}  // namespace
}  // namespace clockmark::attack
