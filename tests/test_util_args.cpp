#include "util/args.h"

#include <gtest/gtest.h>

namespace clockmark::util {
namespace {

Args make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(Args, EqualsForm) {
  const Args a = make({"prog", "--cycles=500", "--label=hello"});
  EXPECT_EQ(a.get_int("cycles", 0), 500);
  EXPECT_EQ(a.get("label", ""), "hello");
}

TEST(Args, SpaceForm) {
  const Args a = make({"prog", "--cycles", "500", "--rate", "2.5"});
  EXPECT_EQ(a.get_int("cycles", 0), 500);
  EXPECT_DOUBLE_EQ(a.get_double("rate", 0.0), 2.5);
}

TEST(Args, BareFlagIsTrue) {
  const Args a = make({"prog", "--verbose"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_TRUE(a.get_bool("verbose", false));
}

TEST(Args, BoolValues) {
  const Args a = make({"prog", "--x=true", "--y=0", "--z=no"});
  EXPECT_TRUE(a.get_bool("x", false));
  EXPECT_FALSE(a.get_bool("y", true));
  EXPECT_FALSE(a.get_bool("z", true));
}

TEST(Args, FallbacksWhenMissing) {
  const Args a = make({"prog"});
  EXPECT_EQ(a.get("missing", "def"), "def");
  EXPECT_EQ(a.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(a.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(a.get_bool("missing", false));
  EXPECT_FALSE(a.has("missing"));
}

TEST(Args, PositionalArguments) {
  const Args a = make({"prog", "one", "--flag", "two"});
  // "two" is consumed as the value of --flag (space form).
  ASSERT_EQ(a.positional().size(), 1u);
  EXPECT_EQ(a.positional()[0], "one");
  EXPECT_EQ(a.get("flag", ""), "two");
}

TEST(Args, HexIntegers) {
  const Args a = make({"prog", "--seed=0xff"});
  EXPECT_EQ(a.get_int("seed", 0), 255);
}

TEST(Args, ProgramName) {
  const Args a = make({"myprog"});
  EXPECT_EQ(a.program(), "myprog");
}

TEST(Args, UnknownTracksFlagsNobodyAskedAbout) {
  const Args a = make({"prog", "--cycles=500", "--thread=8"});
  EXPECT_EQ(a.get_int("cycles", 0), 500);
  EXPECT_EQ(a.get_int("threads", 1), 1);  // the typo fell back silently...
  const auto bad = a.unknown();            // ...but is not forgotten
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], "thread");
}

TEST(Args, UnknownEmptyWhenEverythingRecognised) {
  const Args a = make({"prog", "--cycles=500", "--verbose"});
  (void)a.get_int("cycles", 0);
  (void)a.has("verbose");
  EXPECT_TRUE(a.unknown().empty());
}

TEST(Args, SuggestionFindsCloseFlag) {
  const Args a = make({"prog", "--thread=8", "--repz=3"});
  (void)a.get_int("threads", 0);
  (void)a.get_int("reps", 0);
  (void)a.get_int("cycles", 0);
  EXPECT_EQ(a.suggestion("thread"), "threads");  // distance 1
  EXPECT_EQ(a.suggestion("repz"), "reps");       // distance 1
  EXPECT_EQ(a.suggestion("wildly-different"), "");
}

TEST(Args, SuggestionRequiresPlausibleDistance) {
  const Args a = make({"prog", "--z=1"});
  (void)a.get_int("out", 0);
  // "z" -> "out" is edit distance 3 and longer than half the name: no hint.
  EXPECT_EQ(a.suggestion("z"), "");
}

TEST(Args, RejectUnknownExitsWithStatus2) {
  EXPECT_EXIT(
      {
        const Args a = make({"prog", "--thread=8"});
        (void)a.get_int("threads", 0);
        a.reject_unknown();
      },
      ::testing::ExitedWithCode(2), "unrecognized option '--thread'");
}

TEST(Args, RejectUnknownPrintsDidYouMeanHint) {
  EXPECT_EXIT(
      {
        const Args a = make({"prog", "--cycels=100"});
        (void)a.get_int("cycles", 0);
        a.reject_unknown();
      },
      ::testing::ExitedWithCode(2), "did you mean '--cycles'");
}

TEST(Args, ValueSuggestionFindsCloseValue) {
  const std::vector<std::string> allowed = {"presets", "load_circuit", "all"};
  EXPECT_EQ(Args::value_suggestion("preset", allowed), "presets");
  EXPECT_EQ(Args::value_suggestion("load_circiut", allowed), "load_circuit");
  EXPECT_EQ(Args::value_suggestion("everything", allowed), "");
}

TEST(Args, RejectUnknownValuePrintsDidYouMeanHint) {
  EXPECT_EXIT(
      {
        const Args a = make({"prog", "--designs=preset"});
        a.reject_unknown_value("designs", a.get("designs", ""),
                               {"presets", "load_circuit", "all"});
      },
      ::testing::ExitedWithCode(2), "did you mean 'presets'");
}

TEST(Args, RejectUnknownValueListsTheAllowedSet) {
  EXPECT_EXIT(
      {
        const Args a = make({"prog", "--designs=everything"});
        a.reject_unknown_value("designs", a.get("designs", ""),
                               {"presets", "load_circuit", "all"});
      },
      ::testing::ExitedWithCode(2), "expected presets, load_circuit, all");
}

TEST(Args, RejectUnknownValueIsNoOpWhenAllowed) {
  const Args a = make({"prog", "--designs=all"});
  a.reject_unknown_value("designs", a.get("designs", ""),
                         {"presets", "load_circuit", "all"});
  SUCCEED();
}

TEST(Args, RejectUnknownIsNoOpWhenClean) {
  const Args a = make({"prog", "--cycles=100"});
  (void)a.get_int("cycles", 0);
  a.reject_unknown();  // must not exit
  SUCCEED();
}

}  // namespace
}  // namespace clockmark::util
