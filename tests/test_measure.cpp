#include "measure/acquisition.h"
#include "measure/oscilloscope.h"
#include "measure/probe.h"
#include "measure/shunt.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace clockmark::measure {
namespace {

TEST(Shunt, OhmsLaw) {
  const ShuntResistor shunt(0.270);
  EXPECT_DOUBLE_EQ(shunt.voltage(1.0), 0.270);
  EXPECT_NEAR(shunt.current(0.270), 1.0, 1e-12);
  const std::vector<double> i = {1.0, 2.0};
  const auto v = shunt.sense(i);
  EXPECT_DOUBLE_EQ(v[1], 0.540);
}

TEST(Shunt, NonPositiveResistanceThrows) {
  EXPECT_THROW(ShuntResistor(0.0), std::invalid_argument);
  EXPECT_THROW(ShuntResistor(-1.0), std::invalid_argument);
}

TEST(Probe, AppliesGainAndNoise) {
  ProbeConfig cfg;
  cfg.gain = 2.0;
  cfg.noise_v_rms = 0.0;
  cfg.bandwidth_hz = 200e6;
  Probe probe(cfg, util::Pcg32(1));
  std::vector<double> v(10000, 1.0);
  probe.process(v);
  // After the filter settles, output = gain * input.
  EXPECT_NEAR(v.back(), 2.0, 1e-6);
}

TEST(Probe, NoiseHasConfiguredSigma) {
  ProbeConfig cfg;
  cfg.noise_v_rms = 5e-3;
  Probe probe(cfg, util::Pcg32(2));
  std::vector<double> v(50000, 0.0);
  probe.process(v);
  EXPECT_NEAR(util::stddev(v), 5e-3, 0.3e-3);
}

TEST(Oscilloscope, LsbAndQuantisation) {
  OscilloscopeConfig cfg;
  cfg.resolution_bits = 8;
  cfg.full_scale_v = 2.56;
  cfg.noise_v_rms = 0.0;
  Oscilloscope scope(cfg, util::Pcg32(3));
  EXPECT_DOUBLE_EQ(scope.lsb_v(), 0.01);
  // All quantised outputs land on code centres: (k + 0.5) * lsb - 1.28.
  std::vector<double> v = {0.0, 0.004, 0.013, -0.5};
  const auto q = scope.acquire(v);
  for (const double out : q) {
    const double code = (out + 1.28) / 0.01 - 0.5;
    EXPECT_NEAR(code, std::round(code), 1e-9);
  }
  // Quantisation error bounded by LSB/2.
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_LE(std::fabs(q[i] - v[i]), 0.005 + 1e-12);
  }
}

TEST(Oscilloscope, ClipsAtFullScale) {
  OscilloscopeConfig cfg;
  cfg.full_scale_v = 1.0;
  cfg.noise_v_rms = 0.0;
  Oscilloscope scope(cfg, util::Pcg32(4));
  std::vector<double> v = {10.0, -10.0};
  const auto q = scope.acquire(v);
  EXPECT_LE(q[0], 0.5);
  EXPECT_GE(q[1], -0.5);
}

TEST(Oscilloscope, AutoRangeCentresWaveform) {
  OscilloscopeConfig cfg;
  cfg.noise_v_rms = 0.0;
  Oscilloscope scope(cfg, util::Pcg32(5));
  std::vector<double> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = 3.0 + 0.1 * std::sin(static_cast<double>(i));
  }
  scope.auto_range(v);
  EXPECT_NEAR(scope.config().offset_v, 3.0, 0.01);
  EXPECT_NEAR(scope.config().full_scale_v, 0.2 / 0.8, 0.01);
  const auto q = scope.acquire(v);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(q[i], v[i], scope.lsb_v());
  }
}

TEST(Oscilloscope, InvalidConfigThrows) {
  OscilloscopeConfig bad;
  bad.resolution_bits = 1;
  EXPECT_THROW(Oscilloscope(bad, util::Pcg32(1)), std::invalid_argument);
  OscilloscopeConfig neg;
  neg.full_scale_v = -1.0;
  EXPECT_THROW(Oscilloscope(neg, util::Pcg32(1)), std::invalid_argument);
}

power::PowerTrace flat_trace(double watts, std::size_t cycles) {
  return power::PowerTrace(std::vector<double>(cycles, watts), 10e6,
                           "flat");
}

TEST(Acquisition, RecoversPerCycleVectorLength) {
  AcquisitionConfig cfg;
  AcquisitionChain chain(cfg);
  const auto acq = chain.measure(flat_trace(2e-3, 200));
  EXPECT_EQ(acq.per_cycle_power_w.size(), 200u);
}

TEST(Acquisition, MeanPowerApproximatelyPreserved) {
  AcquisitionConfig cfg;
  cfg.probe.noise_v_rms = 0.0;
  cfg.scope.noise_v_rms = 0.0;
  AcquisitionChain chain(cfg);
  const auto acq = chain.measure(flat_trace(2e-3, 500));
  // Quantisation + ranging bias stays within a few percent.
  EXPECT_NEAR(acq.mean_power_w, 2e-3, 0.15e-3);
}

TEST(Acquisition, NoiseSeedReproducible) {
  AcquisitionConfig cfg;
  cfg.noise_seed = 77;
  AcquisitionChain a(cfg);
  AcquisitionChain b(cfg);
  const auto trace = flat_trace(2e-3, 100);
  EXPECT_EQ(a.measure(trace).per_cycle_power_w,
            b.measure(trace).per_cycle_power_w);
}

TEST(Acquisition, DifferentSeedsDiffer) {
  AcquisitionConfig ca;
  ca.noise_seed = 1;
  AcquisitionConfig cb;
  cb.noise_seed = 2;
  const auto trace = flat_trace(2e-3, 100);
  EXPECT_NE(AcquisitionChain(ca).measure(trace).per_cycle_power_w,
            AcquisitionChain(cb).measure(trace).per_cycle_power_w);
}

TEST(Acquisition, PdnFilterSmoothsModulation) {
  // A square-modulated trace keeps less cycle-to-cycle variance with the
  // PDN filter enabled than without.
  std::vector<double> p(400);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = (i % 2 == 0) ? 3e-3 : 1e-3;
  }
  const power::PowerTrace trace(p, 10e6);
  AcquisitionConfig with;
  with.probe.noise_v_rms = 0.0;
  with.scope.noise_v_rms = 0.0;
  AcquisitionConfig without = with;
  without.enable_pdn_filter = false;
  const auto yw = AcquisitionChain(with).measure(trace).per_cycle_power_w;
  const auto yo =
      AcquisitionChain(without).measure(trace).per_cycle_power_w;
  EXPECT_LT(util::stddev(yw), 0.5 * util::stddev(yo));
}

TEST(Acquisition, MismatchedSampleRatesThrow) {
  AcquisitionConfig cfg;
  cfg.probe.sample_rate_hz = 1e9;
  EXPECT_THROW(AcquisitionChain chain(cfg), std::invalid_argument);
}

TEST(Acquisition, LsbPowerReported) {
  AcquisitionConfig cfg;
  AcquisitionChain chain(cfg);
  const auto acq = chain.measure(flat_trace(2e-3, 100));
  EXPECT_GT(acq.lsb_power_w, 0.0);
}

}  // namespace
}  // namespace clockmark::measure
