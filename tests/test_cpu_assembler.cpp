#include "cpu/assembler.h"

#include <gtest/gtest.h>

#include "cpu/decoder.h"
#include "cpu/programs.h"

namespace clockmark::cpu {
namespace {

TEST(Assembler, BasicInstructions) {
  const auto r = assemble(R"(
      nop
      mov r1, #42
      add r2, r1, r1
      halt)");
  ASSERT_EQ(r.image.words.size(), 4u);
  const auto i1 = decode(r.image.words[1]);
  ASSERT_TRUE(i1.has_value());
  EXPECT_EQ(i1->opcode, Opcode::kMovImm);
  EXPECT_EQ(i1->rd, 1);
  EXPECT_EQ(i1->imm, 42);
}

TEST(Assembler, ForwardAndBackwardLabels) {
  const auto r = assemble(R"(
  top:
      b   skip
      nop
  skip:
      b   top
      )");
  const auto fwd = decode(r.image.words[0]);
  const auto bwd = decode(r.image.words[2]);
  ASSERT_TRUE(fwd.has_value());
  ASSERT_TRUE(bwd.has_value());
  EXPECT_EQ(fwd->imm, 1);   // skip one word
  EXPECT_EQ(bwd->imm, -3);  // back to address 0 from next-pc 12
  EXPECT_EQ(r.symbols.at("top"), 0u);
  EXPECT_EQ(r.symbols.at("skip"), 8u);
}

TEST(Assembler, LiExpandsToTwoWords) {
  const auto r = assemble("    li r3, 0xdeadbeef\n    halt\n");
  ASSERT_EQ(r.image.words.size(), 3u);
  const auto lo = decode(r.image.words[0]);
  const auto hi = decode(r.image.words[1]);
  EXPECT_EQ(lo->opcode, Opcode::kMovImm);
  EXPECT_EQ(lo->imm, 0xbeef);
  EXPECT_EQ(hi->opcode, Opcode::kMovTop);
  EXPECT_EQ(hi->imm, 0xdead);
}

TEST(Assembler, LiWithLabelAddress) {
  const auto r = assemble(R"(
      li r0, data
      halt
  data:
      .word 7
      )");
  const auto lo = decode(r.image.words[0]);
  EXPECT_EQ(lo->imm, 12);  // data sits after li (2 words) + halt
}

TEST(Assembler, EquConstants) {
  const auto r = assemble(R"(
  .equ MAGIC, 0x1234
      mov r0, #MAGIC
      halt)");
  const auto i = decode(r.image.words[0]);
  EXPECT_EQ(i->imm, 0x1234);
}

TEST(Assembler, WordDirectiveMultipleValues) {
  const auto r = assemble(".word 1, 2, 0xff\n");
  ASSERT_EQ(r.image.words.size(), 3u);
  EXPECT_EQ(r.image.words[0], 1u);
  EXPECT_EQ(r.image.words[2], 0xffu);
}

TEST(Assembler, SpaceDirectiveReservesZeroedWords) {
  const auto r = assemble(".space 10\n.word 5\n");
  ASSERT_EQ(r.image.words.size(), 4u);  // ceil(10/4)=3 zeros + 1 word
  EXPECT_EQ(r.image.words[0], 0u);
  EXPECT_EQ(r.image.words[3], 5u);
}

TEST(Assembler, RegisterAliases) {
  const auto r = assemble("    mov sp, #16\n    bx lr\n");
  const auto mov = decode(r.image.words[0]);
  EXPECT_EQ(mov->rd, kSp);
  const auto bx = decode(r.image.words[1]);
  EXPECT_EQ(bx->rn, kLr);
}

TEST(Assembler, RegisterRangesInLists) {
  const auto r = assemble("    push {r4-r7, lr}\n");
  const auto p = decode(r.image.words[0]);
  EXPECT_EQ(p->imm, 0x80f0);
}

TEST(Assembler, MemoryOperandForms) {
  const auto r = assemble(R"(
      ldr  r0, [r1]
      ldr  r0, [r1, #8]
      str  r0, [sp, #-4]
      )");
  EXPECT_EQ(decode(r.image.words[0])->imm, 0);
  EXPECT_EQ(decode(r.image.words[1])->imm, 8);
  EXPECT_EQ(decode(r.image.words[2])->imm, -4);
  EXPECT_EQ(decode(r.image.words[2])->rn, kSp);
}

TEST(Assembler, CommentsAndBlankLines) {
  const auto r = assemble(R"(
  ; full line comment
      mov r0, #1   ; trailing comment
      // c++ style
      halt // done
      )");
  EXPECT_EQ(r.image.words.size(), 2u);
}

TEST(Assembler, BaseAddressOffsetsLabels) {
  const auto r = assemble("start:\n    b start\n", 0x1000);
  EXPECT_EQ(r.symbols.at("start"), 0x1000u);
  EXPECT_EQ(r.image.base_address, 0x1000u);
  EXPECT_EQ(decode(r.image.words[0])->imm, -1);
}

TEST(AssemblerErrors, UnknownMnemonic) {
  EXPECT_THROW(assemble("    frobnicate r0\n"), AssemblyError);
}

TEST(AssemblerErrors, UnknownLabel) {
  EXPECT_THROW(assemble("    b nowhere\n"), AssemblyError);
}

TEST(AssemblerErrors, DuplicateLabel) {
  EXPECT_THROW(assemble("x:\nx:\n    nop\n"), AssemblyError);
}

TEST(AssemblerErrors, WrongOperandCount) {
  EXPECT_THROW(assemble("    add r0, r1\n"), AssemblyError);
  EXPECT_THROW(assemble("    mov r0\n"), AssemblyError);
}

TEST(AssemblerErrors, BadRegister) {
  EXPECT_THROW(assemble("    mov r16, #1\n"), AssemblyError);
}

TEST(AssemblerErrors, MessageIncludesLineNumber) {
  try {
    assemble("    nop\n    bogus r1\n");
    FAIL() << "expected AssemblyError";
  } catch (const AssemblyError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Disassembler, RoundTripListing) {
  const auto r = assemble(R"(
      mov r1, #10
      add r2, r1, r1
      b   end
      nop
  end:
      halt
      )");
  const std::string listing = disassemble(r.image);
  EXPECT_NE(listing.find("mov r1, #10"), std::string::npos);
  EXPECT_NE(listing.find("add r2, r1, r1"), std::string::npos);
  EXPECT_NE(listing.find("halt"), std::string::npos);
}

TEST(Validator, CleanProgramHasNoIssues) {
  const auto r = assemble(R"(
  loop:
      add r0, r0, #1
      b loop
      )");
  EXPECT_TRUE(validate(r.image).empty());
}

TEST(Validator, BranchOutsideImageFlagged) {
  // Hand-craft a branch beyond the image end.
  ProgramImage img;
  img.words.push_back(encode({Opcode::kB, 0, 0, 0, 100, Cond::kAl}));
  const auto issues = validate(img);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("outside"), std::string::npos);
}

TEST(Validator, DataWordsReportedAsUndecodable) {
  ProgramImage img;
  img.words.push_back(0xff000000u);
  const auto issues = validate(img);
  ASSERT_EQ(issues.size(), 1u);
}

TEST(BundledPrograms, AllAssembleAndValidate) {
  for (const auto& src :
       {dhrystone_like_source(), fibonacci_source(), memcpy_source(),
        hello_uart_source()}) {
    const auto r = assemble_program(src);
    EXPECT_GT(r.image.words.size(), 0u);
    // Code sections must have in-range branches; data words legitimately
    // fail to decode, so only check branch issues.
    for (const auto& issue : validate(r.image)) {
      EXPECT_EQ(issue.message.find("branch"), std::string::npos)
          << "at 0x" << std::hex << issue.address;
    }
  }
}

TEST(WorkloadGenerator, GeneratesValidProgram) {
  WorkloadMix mix;
  mix.seed = 99;
  const auto r = assemble_program(generate_workload_source(mix));
  EXPECT_GT(r.image.words.size(), mix.block_instructions);
  for (const auto& issue : validate(r.image)) {
    EXPECT_EQ(issue.message.find("branch"), std::string::npos);
  }
}

TEST(WorkloadGenerator, DeterministicPerSeed) {
  WorkloadMix mix;
  mix.seed = 7;
  EXPECT_EQ(generate_workload_source(mix), generate_workload_source(mix));
  WorkloadMix other = mix;
  other.seed = 8;
  EXPECT_NE(generate_workload_source(mix), generate_workload_source(other));
}

}  // namespace
}  // namespace clockmark::cpu
