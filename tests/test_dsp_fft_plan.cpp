// FFT plan cache: planned transforms must be bit-identical to the
// planless reference (the twiddle/chirp tables are built by the same
// floating-point recurrences), the registry must hand out shared plans,
// and concurrent use of one plan must be race-free (TSan covers this
// suite in scripts/tier1.sh).
#include "dsp/fft_plan.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dsp/fft.h"
#include "util/rng.h"

namespace clockmark::dsp {
namespace {

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
  util::Pcg32 rng(seed);
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx(rng.gaussian(), rng.gaussian());
  return x;
}

void expect_bitwise_equal(const std::vector<cplx>& a,
                          const std::vector<cplx>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].real(), b[i].real()) << "index " << i;
    ASSERT_EQ(a[i].imag(), b[i].imag()) << "index " << i;
  }
}

TEST(FftPlan, PlannedMatchesPlanlessPow2) {
  for (const std::size_t n : {1u, 2u, 8u, 64u, 1024u}) {
    const auto x = random_signal(n, 0xF0 + n);
    expect_bitwise_equal(fft(x), fft_unplanned(x, false));
  }
}

TEST(FftPlan, PlannedMatchesPlanlessBluestein) {
  // Non-power-of-two sizes, including the paper's period P = 4095.
  for (const std::size_t n : {3u, 5u, 100u, 1023u, 4095u}) {
    const auto x = random_signal(n, 0xB0 + n);
    expect_bitwise_equal(fft(x), fft_unplanned(x, false));
  }
}

TEST(FftPlan, PlannedInverseMatchesPlanless) {
  for (const std::size_t n : {8u, 100u, 4095u}) {
    const auto x = random_signal(n, 0x10 + n);
    // ifft normalises by 1/n after the raw transform; apply the same op
    // to the planless reference.
    auto ref = fft_unplanned(x, true);
    const double norm = 1.0 / static_cast<double>(n);
    for (auto& v : ref) v *= norm;
    expect_bitwise_equal(ifft(x), ref);
  }
}

TEST(FftPlan, DirectTransformMatchesFft) {
  // Going through FftPlan::transform by hand (own workspace) matches the
  // fft() convenience wrapper.
  const std::size_t n = 4095;
  const auto x = random_signal(n, 0xD1);
  const auto plan = get_fft_plan(n);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->size(), n);
  FftWorkspace ws;
  std::vector<cplx> out;
  plan->transform(x, false, ws, out);
  expect_bitwise_equal(out, fft(x));
}

TEST(FftPlan, CircularCrossCorrelationPlannedMatchesReference) {
  // The planned ccc path (one plan fetch, workspace scratch) must equal
  // the planless formula computed from fft_unplanned.
  for (const std::size_t n : {16u, 100u, 4095u}) {
    util::Pcg32 rng(0xCC + n);
    std::vector<double> a(n);
    std::vector<double> b(n);
    for (auto& v : a) v = rng.gaussian();
    for (auto& v : b) v = rng.gaussian();

    std::vector<cplx> ca(n);
    std::vector<cplx> cb(n);
    for (std::size_t i = 0; i < n; ++i) ca[i] = cplx(a[i], 0.0);
    for (std::size_t i = 0; i < n; ++i) cb[i] = cplx(b[i], 0.0);
    const auto fa = fft_unplanned(ca, false);
    const auto fb = fft_unplanned(cb, false);
    std::vector<cplx> prod(n);
    for (std::size_t k = 0; k < n; ++k) {
      prod[k] = std::conj(fa[k]) * fb[k];
    }
    auto r = fft_unplanned(prod, true);
    const double norm = 1.0 / static_cast<double>(n);
    for (auto& v : r) v *= norm;

    const auto out = circular_cross_correlation(a, b);
    ASSERT_EQ(out.size(), n);
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_EQ(out[k], r[k].real()) << "index " << k;
    }
  }
}

TEST(FftPlan, RegistrySharesPlansAndRejectsOversize) {
  const auto a = get_fft_plan(4095);
  const auto b = get_fft_plan(4095);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_GE(fft_plan_cache_size(), 1u);
  EXPECT_EQ(get_fft_plan(0), nullptr);
  EXPECT_EQ(get_fft_plan(kMaxPlannedFftSize + 1), nullptr);
  // At the cap itself a plan is still provided.
  EXPECT_NE(get_fft_plan(kMaxPlannedFftSize), nullptr);
}

TEST(FftPlan, ConcurrentTransformsShareOnePlan) {
  // Many threads transforming through the same cached plan (each with
  // its own thread-local workspace) must agree with the serial result
  // bit for bit; TSan verifies the registry and shared tables.
  const std::size_t n = 4095;
  const auto x = random_signal(n, 0xC0);
  const auto reference = fft_unplanned(x, false);

  constexpr std::size_t kThreads = 4;
  std::vector<std::vector<cplx>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < 8; ++iter) results[t] = fft(x);
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& result : results) expect_bitwise_equal(result, reference);
}

}  // namespace
}  // namespace clockmark::dsp
