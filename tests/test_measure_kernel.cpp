// The fused acquisition kernel's exactness contract (measure/kernel.h):
// block processing is a scheduling change, not a numerical one, so the
// kernel must reproduce the per-sample reference chain bit for bit —
// per-cycle Y, summary metadata, at any block size, through the batched
// noise generator, and all the way to the CPA verdict on both chips.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "cpa/detector.h"
#include "cpa/spread_spectrum.h"
#include "measure/acquisition.h"
#include "measure/kernel.h"
#include "measure/streaming.h"
#include "power/trace.h"
#include "runtime/seed.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace clockmark::measure {
namespace {

/// A deterministic ~50 mW trace with cycle-to-cycle variation, enough
/// cycles to span many kernel blocks (default block = 4096/50 cycles).
power::PowerTrace make_trace(std::size_t cycles, std::uint64_t seed) {
  util::Pcg32 rng(seed, 7);
  std::vector<double> p(cycles);
  for (auto& v : p) v = 0.05 + 0.005 * rng.gaussian();
  return power::PowerTrace(p, 10.0e6, "kernel-test");
}

void expect_bit_identical(const Acquisition& a, const Acquisition& b) {
  ASSERT_EQ(a.per_cycle_power_w.size(), b.per_cycle_power_w.size());
  for (std::size_t i = 0; i < a.per_cycle_power_w.size(); ++i) {
    ASSERT_EQ(a.per_cycle_power_w[i], b.per_cycle_power_w[i])
        << "cycle " << i;
  }
  EXPECT_EQ(a.mean_power_w, b.mean_power_w);
  EXPECT_EQ(a.lsb_power_w, b.lsb_power_w);
}

TEST(AcquisitionKernel, MatchesReferenceBitExact) {
  AcquisitionConfig cfg;  // chip-I-style defaults, auto-range on
  cfg.noise_seed = 1234;
  AcquisitionChain chain(cfg);
  const auto trace = make_trace(20000, 0xC51);
  expect_bit_identical(chain.acquire_reference(trace), chain.measure(trace));
}

TEST(AcquisitionKernel, MatchesReferenceWithoutPdnAndFixedRange) {
  // The no-PDN fused loop and the fixed-range path (no range pass).
  AcquisitionConfig cfg;
  cfg.enable_pdn_filter = false;
  cfg.range_policy = RangePolicy::kFixedRange;
  cfg.scope.full_scale_v = 0.2;
  cfg.noise_seed = 99;
  AcquisitionChain chain(cfg);
  const auto trace = make_trace(8000, 0xBEEF);
  expect_bit_identical(chain.acquire_reference(trace), chain.measure(trace));
}

TEST(AcquisitionKernel, MatchesReferenceOnChipConfigs) {
  for (const bool chip2 : {false, true}) {
    const auto scfg = chip2 ? sim::chip2_default() : sim::chip1_default();
    AcquisitionChain chain(scfg.acquisition);
    const auto trace = make_trace(12000, chip2 ? 2u : 1u);
    expect_bit_identical(chain.acquire_reference(trace),
                         chain.measure(trace));
  }
}

TEST(AcquisitionKernel, BlockSizeInvariance) {
  // The block size is a scheduling knob: any value gives the same bits.
  AcquisitionConfig cfg;
  cfg.noise_seed = 42;
  const auto trace = make_trace(4000, 0xAB);
  std::vector<double> baseline;
  for (const std::size_t block : {0, 1, 13, 257, 100000}) {
    cfg.block_cycles = block;
    AcquisitionKernel kernel(cfg, trace.clock_hz());
    std::vector<double> y;
    kernel.range_feed(trace.span());
    kernel.fix_range();
    kernel.acquire_feed(trace.span(), y);
    if (baseline.empty()) {
      baseline = y;
      continue;
    }
    ASSERT_EQ(y.size(), baseline.size()) << "block " << block;
    for (std::size_t i = 0; i < y.size(); ++i) {
      ASSERT_EQ(y[i], baseline[i]) << "block " << block << " cycle " << i;
    }
  }
}

TEST(AcquisitionKernel, ChunkedFeedsMatchWholeTraceFeed) {
  // Feeding the trace in ragged whole-cycle chunks (the streaming-chain
  // usage) must match one whole-trace feed.
  AcquisitionConfig cfg;
  cfg.noise_seed = 7;
  const auto trace = make_trace(5000, 0x5eed);

  AcquisitionChain chain(cfg);
  const auto whole = chain.measure(trace);

  AcquisitionKernel kernel(cfg, trace.clock_hz());
  const auto span = trace.span();
  // First chunk must cover the 8-cycle PDN priming window (the same
  // contract the streaming chain always had); the rest can be ragged.
  const std::size_t chunks[] = {64, 999, 1, 1500, 17, 2419};
  std::size_t pos = 0;
  for (const std::size_t c : chunks) {
    kernel.range_feed(span.subspan(pos, c));
    pos += c;
  }
  ASSERT_EQ(pos, span.size());
  kernel.fix_range();
  std::vector<double> y;
  pos = 0;
  for (const std::size_t c : chunks) {
    kernel.acquire_feed(span.subspan(pos, c), y);
    pos += c;
  }
  ASSERT_EQ(y.size(), whole.per_cycle_power_w.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_EQ(y[i], whole.per_cycle_power_w[i]) << "cycle " << i;
  }
  EXPECT_EQ(kernel.summary().mean_power_w, whole.mean_power_w);
  EXPECT_EQ(kernel.summary().lsb_power_w, whole.lsb_power_w);
}

TEST(AcquisitionKernel, StreamingChainDelegatesToKernel) {
  AcquisitionConfig cfg;
  cfg.noise_seed = 21;
  const auto trace = make_trace(3000, 0x777);
  AcquisitionChain chain(cfg);
  const auto whole = chain.measure(trace);

  StreamingAcquisitionChain stream(cfg, trace.clock_hz());
  const auto span = trace.span();
  if (stream.needs_range_pass()) {
    for (std::size_t pos = 0; pos < span.size(); pos += 750) {
      stream.range_feed(span.subspan(pos, 750));
    }
    stream.fix_range();
  }
  std::vector<double> y;
  for (std::size_t pos = 0; pos < span.size(); pos += 750) {
    const auto chunk = stream.acquire_feed(span.subspan(pos, 750));
    y.insert(y.end(), chunk.begin(), chunk.end());
  }
  ASSERT_EQ(y.size(), whole.per_cycle_power_w.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_EQ(y[i], whole.per_cycle_power_w[i]) << "cycle " << i;
  }
}

TEST(AcquisitionKernel, RandomTriggerOffsetMatchesReferenceBitExact) {
  // A random capture-start offset drops a sub-cycle sample prefix and
  // recovers alignment with the software edge trigger. The kernel's
  // three-pass path (range -> trigger -> acquire) must reproduce the
  // reference oracle bit for bit, including the recovered offset.
  AcquisitionConfig cfg;
  cfg.trigger_sim = TriggerSim::kRandomOffset;
  cfg.noise_seed = 5;
  AcquisitionChain chain(cfg);
  const auto trace = make_trace(2000, 0x11);
  const auto got = chain.measure(trace);
  expect_bit_identical(chain.acquire_reference(trace), got);
  EXPECT_LE(got.per_cycle_power_w.size(), trace.cycles());
}

TEST(AcquisitionKernel, FixedTriggerOffsetsMatchReferenceBitExact) {
  // Every fixed sub-cycle offset (including 0, where the prefix is
  // empty but the edge-trigger recovery still runs) must match the
  // reference oracle.
  const auto trace = make_trace(1500, 0x22);
  for (const std::size_t offset : {0, 1, 17, 25, 49}) {
    AcquisitionConfig cfg;
    cfg.trigger_sim = TriggerSim::kFixedOffset;
    cfg.trigger_offset_samples = offset;
    cfg.noise_seed = 31;
    AcquisitionChain chain(cfg);
    const auto got = chain.measure(trace);
    expect_bit_identical(chain.acquire_reference(trace), got);
  }
}

TEST(AcquisitionKernel, ChunkedTriggerOffsetFeedsMatchBatch) {
  // The three-pass trigger pipeline is chunk-invariant like everything
  // else: ragged whole-cycle feeds reproduce the whole-trace result.
  AcquisitionConfig cfg;
  cfg.trigger_sim = TriggerSim::kRandomOffset;
  cfg.noise_seed = 77;
  const auto trace = make_trace(5000, 0x33);
  AcquisitionChain chain(cfg);
  const auto whole = chain.measure(trace);

  AcquisitionKernel kernel(cfg, trace.clock_hz());
  EXPECT_TRUE(kernel.needs_trigger_pass());
  const auto span = trace.span();
  const std::size_t chunks[] = {64, 999, 1, 1500, 17, 2419};
  const auto feed_all = [&](auto&& feed) {
    std::size_t pos = 0;
    for (const std::size_t c : chunks) {
      feed(span.subspan(pos, c));
      pos += c;
    }
    ASSERT_EQ(pos, span.size());
  };
  feed_all([&](auto s) { kernel.range_feed(s); });
  kernel.fix_range();
  feed_all([&](auto s) { kernel.trigger_feed(s); });
  kernel.fix_trigger();
  std::vector<double> y;
  feed_all([&](auto s) { kernel.acquire_feed(s, y); });
  ASSERT_EQ(y.size(), whole.per_cycle_power_w.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_EQ(y[i], whole.per_cycle_power_w[i]) << "cycle " << i;
  }
  EXPECT_EQ(kernel.summary().mean_power_w, whole.mean_power_w);
}

TEST(AcquisitionKernel, TriggerPassOrderingEnforced) {
  AcquisitionConfig cfg;
  cfg.trigger_sim = TriggerSim::kRandomOffset;
  const auto trace = make_trace(1000, 3);
  AcquisitionKernel kernel(cfg, trace.clock_hz());
  std::vector<double> y;
  // Trigger pass requires the fixed range; acquire requires the fixed
  // trigger.
  EXPECT_THROW(kernel.trigger_feed(trace.span()), std::logic_error);
  kernel.range_feed(trace.span());
  kernel.fix_range();
  EXPECT_THROW(kernel.acquire_feed(trace.span(), y), std::logic_error);
  kernel.trigger_feed(trace.span());
  kernel.fix_trigger();
  kernel.acquire_feed(trace.span(), y);
  EXPECT_LE(y.size(), trace.cycles());
}

// End-to-end: the scenario pipeline (which routes acquisition through
// the kernel) must produce exactly the reference chain's Y and the same
// CPA verdict on both chip models.
TEST(AcquisitionKernel, EndToEndDetectionUnchangedOnBothChips) {
  for (const bool chip2 : {false, true}) {
    auto cfg = chip2 ? sim::chip2_default() : sim::chip1_default();
    cfg.trace_cycles = 20000;
    cfg.acquisition.scope.noise_v_rms = 2e-3;
    cfg.acquisition.probe.noise_v_rms = 0.5e-3;
    const sim::Scenario scenario(cfg);
    const auto run = scenario.run(0);

    // Replay the acquisition of the same repetition on the per-sample
    // reference chain (same derived noise seed, same device trace).
    auto acq = scenario.config().acquisition;
    acq.noise_seed = runtime::derive_acquisition_seed(cfg.seed, 0);
    AcquisitionChain chain(acq);
    const auto ref = chain.acquire_reference(run.total_power);
    expect_bit_identical(ref, run.acquisition);

    const cpa::DetectorPolicy policy;
    const cpa::Detector detector(policy);
    const auto verdict_kernel = detector.decide(cpa::compute_spread_spectrum(
        run.acquisition.per_cycle_power_w, run.pattern,
        cpa::CorrelationMethod::kFft, policy.guard));
    const auto verdict_ref = detector.decide(cpa::compute_spread_spectrum(
        ref.per_cycle_power_w, run.pattern, cpa::CorrelationMethod::kFft,
        policy.guard));
    EXPECT_TRUE(verdict_kernel.detected)
        << (chip2 ? "chip II" : "chip I") << ": " << verdict_kernel.reason;
    EXPECT_EQ(verdict_kernel.detected, verdict_ref.detected);
    EXPECT_EQ(verdict_kernel.spectrum.peak_rotation,
              verdict_ref.spectrum.peak_rotation);
    EXPECT_EQ(verdict_kernel.spectrum.peak_value,
              verdict_ref.spectrum.peak_value);
  }
}

TEST(AcquisitionKernel, RejectsLateRangeFeedAndMissingRangeFix) {
  AcquisitionConfig cfg;
  const auto trace = make_trace(1000, 3);
  AcquisitionKernel kernel(cfg, trace.clock_hz());
  ASSERT_TRUE(kernel.needs_range_pass());
  std::vector<double> y;
  EXPECT_THROW(kernel.acquire_feed(trace.span(), y), std::logic_error);
}

}  // namespace
}  // namespace clockmark::measure
