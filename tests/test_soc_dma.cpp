#include "soc/dma.h"

#include <gtest/gtest.h>

#include "soc/memory.h"

namespace clockmark::soc {
namespace {

struct DmaFixture : ::testing::Test {
  void SetUp() override {
    ram = std::make_shared<Ram>(0x1000);
    bus.map(0x20000000, 0x1000, ram);
    dma = std::make_shared<DmaEngine>(bus, /*bytes_per_cycle=*/8);
    bus.map(0x40001000, 0x100, dma);
    for (std::uint32_t i = 0; i < 64; ++i) {
      ram->poke(i, static_cast<std::uint8_t>(i * 3 + 1));
    }
  }

  void program(std::uint32_t src, std::uint32_t dst, std::uint32_t len) {
    bus.write(0x40001000, src, 4);
    bus.write(0x40001004, dst, 4);
    bus.write(0x40001008, len, 4);
    bus.write(0x4000100C, 1, 4);
  }

  Bus bus;
  std::shared_ptr<Ram> ram;
  std::shared_ptr<DmaEngine> dma;
};

TEST_F(DmaFixture, CopiesBlock) {
  program(0x20000000, 0x20000100, 64);
  int guard = 0;
  while (dma->busy() && guard++ < 100) bus.tick();
  EXPECT_FALSE(dma->busy());
  EXPECT_EQ(dma->transfers_completed(), 1u);
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(ram->peek(0x100 + i), static_cast<std::uint8_t>(i * 3 + 1));
  }
}

TEST_F(DmaFixture, ThroughputMatchesBudget) {
  program(0x20000000, 0x20000100, 64);
  bus.tick();  // 8 bytes/cycle -> 2 word beats
  EXPECT_EQ(dma->last_cycle_beats(), 2u);
  EXPECT_TRUE(dma->busy());
  // 64 bytes at 8 B/cycle: 8 cycles total.
  for (int i = 0; i < 7; ++i) bus.tick();
  EXPECT_FALSE(dma->busy());
}

TEST_F(DmaFixture, UnalignedTailCopiedByteWise) {
  program(0x20000000, 0x20000200, 7);
  int guard = 0;
  while (dma->busy() && guard++ < 100) bus.tick();
  for (std::uint32_t i = 0; i < 7; ++i) {
    EXPECT_EQ(ram->peek(0x200 + i), static_cast<std::uint8_t>(i * 3 + 1));
  }
  EXPECT_NE(ram->peek(0x207), ram->peek(0x007));  // not over-copied
}

TEST_F(DmaFixture, RegisterReadback) {
  program(0x20000010, 0x20000300, 32);
  EXPECT_EQ(bus.read(0x40001000, 4).data, 0x20000010u);
  EXPECT_EQ(bus.read(0x40001004, 4).data, 0x20000300u);
  EXPECT_EQ(bus.read(0x40001008, 4).data, 32u);
  EXPECT_EQ(bus.read(0x4000100C, 4).data, 1u);  // busy
}

TEST_F(DmaFixture, CtrlClearAborts) {
  program(0x20000000, 0x20000100, 64);
  bus.tick();
  bus.write(0x4000100C, 0, 4);  // abort
  EXPECT_FALSE(dma->busy());
}

TEST_F(DmaFixture, FaultAborts) {
  program(0x90000000, 0x20000100, 16);  // unmapped source
  bus.tick();
  EXPECT_FALSE(dma->busy());
  EXPECT_EQ(dma->transfers_completed(), 0u);
}

TEST_F(DmaFixture, BadRegisterOffsetFaults) {
  EXPECT_TRUE(bus.read(0x40001010, 4).fault);
  EXPECT_TRUE(bus.write(0x40001010, 0, 4).fault);
}

TEST_F(DmaFixture, GeneratesBusTraffic) {
  bus.reset_stats();
  program(0x20000000, 0x20000100, 64);
  bus.take_cycle_transactions();
  bus.tick();
  // 2 word beats = 2 reads + 2 writes on the bus in one cycle.
  EXPECT_EQ(bus.take_cycle_transactions(), 4u);
}

}  // namespace
}  // namespace clockmark::soc
