// Blind synchronisation: the warp primitives (batch ≡ streaming, round
// trip) and the coarse-to-fine search locking onto desynchronised chip I
// and chip II captures — recovered offset within ±1 cycle, ratio/drift
// within the refinement lattice, and the corrected detection margin
// within 10% of the cycle-aligned one.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "attack/desync.h"
#include "cpa/detector.h"
#include "runtime/executor.h"
#include "sim/scenario.h"
#include "sync/search.h"
#include "sync/types.h"
#include "sync/warp.h"
#include "util/rng.h"

namespace {

using namespace clockmark;
using sim::ChipModel;
using sim::Scenario;
using sim::ScenarioConfig;

ScenarioConfig fast_config(ChipModel chip, std::size_t cycles = 20000) {
  ScenarioConfig cfg = chip == ChipModel::kChip1 ? sim::chip1_default()
                                                 : sim::chip2_default();
  cfg.trace_cycles = cycles;
  // Short traces need a crisper measurement to keep tests deterministic.
  cfg.acquisition.scope.noise_v_rms = 2e-3;
  cfg.acquisition.probe.noise_v_rms = 0.5e-3;
  return cfg;
}

std::vector<double> noise_trace(std::size_t n, std::uint64_t seed) {
  util::Pcg32 rng(seed, 0x5eed);
  std::vector<double> y(n);
  for (double& v : y) v = rng.gaussian(1.0, 0.3);
  return y;
}

/// Misalignment (in cycles, wrapped to (-P/2, P/2]) between what the
/// blind lock reported and the expected total offset.
double wrapped_offset_error(double estimated, double expected, double period) {
  double e = std::fmod(estimated - expected, period);
  if (e > period / 2) e -= period;
  if (e <= -period / 2) e += period;
  return e;
}

TEST(Warp, IdentityIsACopyAndOutputSizeTracksRatio) {
  const std::vector<double> y = noise_trace(1000, 1);
  EXPECT_EQ(sync::warp_trace(y, sync::WarpSpec{}), y);
  EXPECT_EQ(sync::warp_output_size(sync::WarpSpec{}, y.size()), y.size());

  sync::WarpSpec faster;  // reads ahead: fewer output samples
  faster.ratio = 1.25;
  EXPECT_EQ(sync::warp_output_size(faster, y.size()), 800u);
  sync::WarpSpec slower;
  slower.ratio = 0.5;
  EXPECT_EQ(sync::warp_output_size(slower, y.size()), 1999u);
}

TEST(Warp, StreamWarperBitIdenticalToBatchAcrossChunkings) {
  const std::vector<double> y = noise_trace(5000, 2);
  sync::WarpSpec spec;
  spec.offset_cycles = 3.3;
  spec.ratio = 1.0 + 80e-6;
  spec.drift = 1e-9;
  const std::vector<double> batch = sync::warp_trace(y, spec);

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{997}, y.size()}) {
    sync::StreamWarper warper(spec);
    std::vector<double> streamed;
    for (std::size_t start = 0; start < y.size(); start += chunk) {
      const std::size_t len = std::min(chunk, y.size() - start);
      warper.feed(std::span<const double>(y).subspan(start, len), streamed);
    }
    warper.finish(streamed);
    EXPECT_EQ(streamed, batch) << "chunk=" << chunk;  // bit-identical
  }
}

TEST(Warp, StreamWarperSurvivesDegenerateNonMonotoneSpec) {
  // A negative-drift apex inside the stream makes the warp positions
  // fall back toward zero — arbitrary public-API input the monotone
  // drop logic must neither underflow on (reads below the dropped
  // prefix clamp to the earliest buffered sample) nor loop forever on
  // (feed/finish honour warp_output_size's degenerate-spec cap).
  const std::vector<double> y = noise_trace(2000, 7);
  sync::WarpSpec spec;
  spec.drift = -1e-3;  // apex at k = 1000, positions decrease after
  const std::vector<double> batch = sync::warp_trace(y, spec);
  EXPECT_EQ(batch.size(), sync::warp_output_size(spec, y.size()));

  sync::StreamWarper warper(spec);
  std::vector<double> streamed;
  for (std::size_t start = 0; start < y.size(); start += 128) {
    const std::size_t len = std::min<std::size_t>(128, y.size() - start);
    warper.feed(std::span<const double>(y).subspan(start, len), streamed);
  }
  warper.finish(streamed);
  ASSERT_EQ(streamed.size(), batch.size());
  // Up to the apex the positions are monotone and the streamed output
  // is still bit-identical to the batch warp.
  for (std::size_t k = 0; k < 1000; ++k) {
    ASSERT_EQ(streamed[k], batch[k]) << "k=" << k;
  }
}

TEST(Warp, InverseWarpRoundTripsInteriorSamples) {
  // Lerp error scales with signal curvature, so the round trip is only
  // meaningful on a smooth trace (white noise is unrecoverable).
  std::vector<double> y(4000);
  for (std::size_t k = 0; k < y.size(); ++k) {
    const double t = static_cast<double>(k);
    y[k] = std::sin(2.0 * M_PI * t / 64.0) +
           0.25 * std::cos(2.0 * M_PI * t / 17.0);
  }
  sync::WarpSpec attack;
  attack.offset_cycles = 5.4;
  attack.ratio = 1.0 + 120e-6;
  const std::vector<double> warped = sync::warp_trace(y, attack);

  sync::WarpSpec inverse;
  inverse.offset_cycles = -attack.offset_cycles / attack.ratio;
  inverse.ratio = 1.0 / attack.ratio;
  const std::vector<double> back = sync::warp_trace(warped, inverse);

  ASSERT_GT(back.size(), 3000u);
  for (std::size_t k = 10; k < 3000; ++k) {
    EXPECT_NEAR(back[k], y[k], 0.05) << "k=" << k;
  }
}

class BlindSyncChips : public ::testing::TestWithParam<ChipModel> {};

TEST_P(BlindSyncChips, LocksOnInjectedOffsetWithinOneCycle) {
  const Scenario sc(fast_config(GetParam()));
  const auto r = sc.run(0);
  const auto& y = r.acquisition.per_cycle_power_w;
  const double period = static_cast<double>(r.pattern.size());

  const cpa::Detector detector;
  const auto aligned = detector.detect(y, r.pattern);
  const double aligned_rot =
      static_cast<double>(aligned.spectrum.peak_rotation);

  attack::DesyncAttack a;
  a.kind = attack::DesyncKind::kFixedOffset;
  a.offset_cycles = 25.4;
  const std::vector<double> attacked = attack::apply_desync(y, a);

  const sync::SyncEstimate est = sync::find_sync(attacked, r.pattern);
  EXPECT_TRUE(est.locked);
  EXPECT_GT(est.evaluations, 0u);

  // Recovered total offset = injected shift on top of the aligned
  // capture's own (arbitrary) rotation, to within one cycle.
  const double err = wrapped_offset_error(
      est.offset_cycles, aligned_rot + a.offset_cycles, period);
  EXPECT_LE(std::abs(err), 1.0) << "estimated " << est.offset_cycles
                                << " expected about "
                                << aligned_rot + a.offset_cycles;

  // End-to-end margin: corrected detection keeps >= 90% of aligned z.
  const std::vector<double> corrected =
      est.correction.is_identity() ? attacked
                                   : sync::warp_trace(attacked,
                                                      est.correction);
  const auto synced = detector.detect(corrected, r.pattern);
  EXPECT_GE(synced.spectrum.peak_z, 0.9 * aligned.spectrum.peak_z);
}

INSTANTIATE_TEST_SUITE_P(Chips, BlindSyncChips,
                         ::testing::Values(ChipModel::kChip1,
                                           ChipModel::kChip2));

TEST(BlindSync, RecoversRatioMismatchAndDrift) {
  const Scenario sc(fast_config(ChipModel::kChip1, 32768));
  const auto r = sc.run(0);
  const auto& y = r.acquisition.per_cycle_power_w;
  const cpa::Detector detector;
  const double aligned_z = detector.detect(y, r.pattern).spectrum.peak_z;

  attack::DesyncAttack a;
  a.kind = attack::DesyncKind::kDrift;
  a.ratio = 1.0 + 60e-6;
  a.drift = 2e-9;
  const std::vector<double> attacked = attack::apply_desync(y, a);

  const sync::SyncEstimate est = sync::find_sync(attacked, r.pattern);
  EXPECT_TRUE(est.locked);
  EXPECT_NEAR(est.correction.ratio, 1.0 / a.ratio, 5e-5);

  // Ratio and drift are only identifiable up to combinations that keep
  // the trace aligned, so assert the composite residual: the attack time
  // base evaluated at the correction's read positions must stay within
  // one cycle of uniform (a constant offset is absorbed by the periodic
  // correlation and does not count).
  const std::size_t n = attacked.size();
  double lo = 0.0, hi = 0.0;
  for (std::size_t j = 0; j <= n; j += n / 16) {
    const double k = est.correction.offset_cycles +
                     est.correction.ratio * static_cast<double>(j) +
                     0.5 * est.correction.drift * static_cast<double>(j) *
                         static_cast<double>(j);
    const double residual =
        a.ratio * k + 0.5 * a.drift * k * k - static_cast<double>(j);
    lo = std::min(lo, residual);
    hi = std::max(hi, residual);
    if (j == 0) lo = hi = residual;
  }
  EXPECT_LE(hi - lo, 1.0) << "residual timing wander " << hi - lo;

  const std::vector<double> corrected =
      sync::warp_trace(attacked, est.correction);
  EXPECT_GE(detector.detect(corrected, r.pattern).spectrum.peak_z,
            0.9 * aligned_z);
}

TEST(BlindSync, ParallelSearchBitIdenticalToSerial) {
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);
  attack::DesyncAttack a;
  a.kind = attack::DesyncKind::kResample;
  a.ratio = 1.0 + 80e-6;
  const std::vector<double> attacked =
      attack::apply_desync(r.acquisition.per_cycle_power_w, a);

  const sync::SyncEstimate serial = sync::find_sync(attacked, r.pattern);
  runtime::Executor executor(8);
  const sync::SyncEstimate parallel =
      sync::find_sync(attacked, r.pattern, {}, &executor);

  EXPECT_EQ(parallel.correction.offset_cycles,
            serial.correction.offset_cycles);
  EXPECT_EQ(parallel.correction.ratio, serial.correction.ratio);
  EXPECT_EQ(parallel.correction.drift, serial.correction.drift);
  EXPECT_EQ(parallel.peak_rotation, serial.peak_rotation);
  EXPECT_EQ(parallel.peak_z, serial.peak_z);
  EXPECT_EQ(parallel.evaluations, serial.evaluations);
}

TEST(BlindSync, ShortTraceReturnsUnlockedIdentity) {
  const std::vector<double> pattern(4095, 1.0);
  const std::vector<double> y = noise_trace(100, 4);
  const sync::SyncEstimate est = sync::find_sync(y, pattern);
  EXPECT_FALSE(est.locked);
  EXPECT_TRUE(est.correction.is_identity());
}

TEST(BlindSync, EmptyPatternThrows) {
  const std::vector<double> y = noise_trace(100, 5);
  EXPECT_THROW(sync::find_sync(y, {}), std::invalid_argument);
}

TEST(BlindSync, JitterDoesNotBreakTheLock) {
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);
  const cpa::Detector detector;
  const double aligned_z =
      detector.detect(r.acquisition.per_cycle_power_w, r.pattern)
          .spectrum.peak_z;

  attack::DesyncAttack a;
  a.kind = attack::DesyncKind::kJitter;
  a.jitter_cycles = 0.2;
  const std::vector<double> attacked =
      attack::apply_desync(r.acquisition.per_cycle_power_w, a);

  const sync::SyncEstimate est = sync::find_sync(attacked, r.pattern);
  const std::vector<double> corrected =
      est.correction.is_identity() ? attacked
                                   : sync::warp_trace(attacked,
                                                      est.correction);
  EXPECT_GE(detector.detect(corrected, r.pattern).spectrum.peak_z,
            0.9 * aligned_z);
}

}  // namespace
