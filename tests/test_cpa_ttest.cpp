#include "cpa/ttest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cpa/correlation.h"
#include "sequence/lfsr.h"
#include "sequence/polynomials.h"
#include "util/rng.h"

namespace clockmark::cpa {
namespace {

std::vector<double> pattern_of_width(unsigned width) {
  sequence::Lfsr lfsr(width, sequence::maximal_taps(width), 1);
  std::vector<double> p((1u << width) - 1u);
  for (auto& v : p) v = lfsr.step() ? 1.0 : 0.0;
  return p;
}

std::vector<double> synthetic(const std::vector<double>& pattern,
                              std::size_t n, std::size_t rot, double a,
                              double sigma, std::uint64_t seed) {
  util::Pcg32 rng(seed);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = a * pattern[(i + rot) % pattern.size()] +
           rng.gaussian(5.0, sigma);
  }
  return y;
}

TEST(WelchTTest, SeparatesGroupsAtTrueRotation) {
  const auto pattern = pattern_of_width(8);
  const auto y = synthetic(pattern, 20000, 99, 0.5, 1.0, 1);
  const auto r = welch_t_test(y, pattern, 99);
  EXPECT_GT(r.t, 10.0);
  EXPECT_NEAR(r.mean_high - r.mean_low, 0.5, 0.05);
  EXPECT_GT(r.n_high, 9000u);
  EXPECT_GT(r.n_low, 9000u);
}

TEST(WelchTTest, NearZeroAtWrongRotation) {
  const auto pattern = pattern_of_width(8);
  const auto y = synthetic(pattern, 20000, 99, 0.5, 1.0, 2);
  const auto r = welch_t_test(y, pattern, 150);
  EXPECT_LT(std::fabs(r.t), 5.0);
}

TEST(WelchTTest, SweepMatchesPerRotationTest) {
  const auto pattern = pattern_of_width(6);
  const auto y = synthetic(pattern, 3000, 17, 0.3, 1.0, 3);
  const auto sweep = t_sweep(y, pattern);
  ASSERT_EQ(sweep.size(), pattern.size());
  for (const std::size_t r : {0u, 5u, 17u, 42u, 62u}) {
    const auto direct = welch_t_test(y, pattern, r);
    EXPECT_NEAR(sweep[r], std::fabs(direct.t), 1e-9) << "rotation " << r;
  }
  // Peak of the sweep is at the true rotation.
  std::size_t best = 0;
  for (std::size_t r = 1; r < sweep.size(); ++r) {
    if (sweep[r] > sweep[best]) best = r;
  }
  EXPECT_EQ(best, 17u);
}

TEST(WelchTTest, EquivalentToPearsonInformation) {
  // For a binary model: t == rho * sqrt((N-2)/(1-rho^2)).
  const auto pattern = pattern_of_width(8);
  const auto y = synthetic(pattern, 30000, 40, 0.2, 1.0, 4);
  const double rho = correlate_at(y, pattern, 40);
  const auto t = welch_t_test(y, pattern, 40);
  // Welch vs pooled t differ slightly when group variances differ; the
  // agreement is within a couple of percent here.
  EXPECT_NEAR(t.t, t_from_rho(rho, y.size()),
              0.03 * std::fabs(t_from_rho(rho, y.size())));
}

TEST(WelchTTest, DegenerateGroupsGiveZero) {
  // All-ones pattern: the low group is empty.
  const std::vector<double> pattern(31, 1.0);
  std::vector<double> y(1000, 1.0);
  const auto r = welch_t_test(y, pattern, 0);
  EXPECT_EQ(r.t, 0.0);
  EXPECT_EQ(r.n_low, 0u);
}

TEST(WelchTTest, ConstantMeasurementGivesZero) {
  const auto pattern = pattern_of_width(6);
  const std::vector<double> y(2000, 3.0);
  EXPECT_EQ(welch_t_test(y, pattern, 0).t, 0.0);
  for (const double t : t_sweep(y, pattern)) EXPECT_EQ(t, 0.0);
}

TEST(WelchTTest, EmptyPatternThrows) {
  const std::vector<double> y(10, 1.0);
  const std::vector<double> empty;
  EXPECT_THROW(welch_t_test(y, empty, 0), std::invalid_argument);
  EXPECT_THROW(t_sweep(y, empty), std::invalid_argument);
}

TEST(TFromRho, KnownValues) {
  EXPECT_EQ(t_from_rho(0.0, 1000), 0.0);
  EXPECT_GT(t_from_rho(0.1, 1000), 3.0);
  EXPECT_EQ(t_from_rho(1.0, 1000), 0.0);  // guarded
  EXPECT_EQ(t_from_rho(0.5, 2), 0.0);     // too few samples
  // Monotone in N.
  EXPECT_GT(t_from_rho(0.05, 300000), t_from_rho(0.05, 30000));
}

}  // namespace
}  // namespace clockmark::cpa
