// BoundedQueue: lifecycle, blocking behaviour, poisoning, and FIFO order
// under producer/consumer contention. The same suites run in the tier-1
// TSan pass.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "stream/bounded_queue.h"

namespace {

using clockmark::stream::BoundedQueue;
using clockmark::stream::QueuePoisoned;

TEST(BoundedQueue, PushPopFifoSingleThread) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BoundedQueue, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(7));
  ASSERT_TRUE(q.push(8));
  q.close();
  EXPECT_FALSE(q.push(9));  // no pushes after close
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_EQ(q.pop().value(), 8);
  EXPECT_FALSE(q.pop().has_value());  // drained -> end of stream
  EXPECT_FALSE(q.pop().has_value());  // stays ended
}

TEST(BoundedQueue, ZeroCapacityIsClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_TRUE(q.push(1));
  EXPECT_EQ(q.stats().capacity, 1u);
  EXPECT_EQ(q.pop().value(), 1);
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(2);
  std::atomic<bool> got_end{false};
  std::thread consumer([&] {
    const auto v = q.pop();  // blocks: queue empty and open
    got_end = !v.has_value();
  });
  // Give the consumer time to block, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(got_end);
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));  // queue now full
  std::atomic<bool> push_rejected{false};
  std::thread producer([&] {
    push_rejected = !q.push(2);  // blocks on full queue
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
  EXPECT_TRUE(push_rejected);
  // The item buffered before close still drains.
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, PoisonDiscardsItemsAndThrowsOnPop) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.poison("source exploded");
  EXPECT_TRUE(q.poisoned());
  EXPECT_EQ(q.size(), 0u);  // buffered items discarded
  EXPECT_FALSE(q.push(3));
  EXPECT_THROW(q.pop(), QueuePoisoned);
  EXPECT_THROW(q.pop(), QueuePoisoned);  // every subsequent pop fails
}

TEST(BoundedQueue, PoisonWakesBlockedConsumerWithThrow) {
  BoundedQueue<int> q(2);
  std::atomic<bool> threw{false};
  std::thread consumer([&] {
    try {
      q.pop();
    } catch (const QueuePoisoned& e) {
      threw = std::string(e.what()).find("broken probe") !=
              std::string::npos;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.poison("broken probe");
  consumer.join();
  EXPECT_TRUE(threw);
}

TEST(BoundedQueue, FirstPoisonReasonWins) {
  BoundedQueue<int> q(2);
  q.poison("first");
  q.poison("second");
  try {
    q.pop();
    FAIL() << "expected QueuePoisoned";
  } catch (const QueuePoisoned& e) {
    EXPECT_NE(std::string(e.what()).find("first"), std::string::npos);
    EXPECT_EQ(std::string(e.what()).find("second"), std::string::npos);
  }
}

TEST(BoundedQueue, FifoOrderUnderContention) {
  // One producer, one consumer, a queue far smaller than the item count:
  // every item arrives exactly once, in order, with backpressure engaged.
  constexpr int kItems = 10000;
  BoundedQueue<int> q(3);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      ASSERT_TRUE(q.push(int(i)));
    }
    q.close();
  });
  std::vector<int> received;
  received.reserve(kItems);
  while (auto v = q.pop()) received.push_back(*v);
  producer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  std::vector<int> expected(kItems);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(received, expected);

  const auto stats = q.stats();
  EXPECT_EQ(stats.pushes, static_cast<std::size_t>(kItems));
  EXPECT_EQ(stats.pops, static_cast<std::size_t>(kItems));
  EXPECT_LE(stats.high_water, 3u);
  EXPECT_GE(stats.high_water, 1u);
}

TEST(BoundedQueue, ManyProducersManyConsumers) {
  // MPMC smoke: 4 producers, 4 consumers, per-producer subsequences must
  // stay ordered (FIFO is per queue; interleaving across producers is
  // arbitrary).
  constexpr int kPerProducer = 2000;
  constexpr int kProducers = 4;
  BoundedQueue<std::pair<int, int>> q(5);

  std::vector<std::thread> producers;
  std::atomic<int> live_producers{kProducers};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push({p, i}));
      }
      if (live_producers.fetch_sub(1) == 1) q.close();
    });
  }

  std::mutex sink_mutex;
  std::vector<std::vector<int>> per_producer(kProducers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        const std::lock_guard<std::mutex> lock(sink_mutex);
        per_producer[static_cast<std::size_t>(v->first)].push_back(
            v->second);
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  for (int p = 0; p < kProducers; ++p) {
    // Each producer's items all arrived; order within a consumer is
    // FIFO but consumers interleave, so only check the multiset.
    auto got = per_producer[static_cast<std::size_t>(p)];
    std::sort(got.begin(), got.end());
    std::vector<int> expected(kPerProducer);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(got, expected) << "producer " << p;
  }
}

}  // namespace
