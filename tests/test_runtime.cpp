// cm_runtime: thread pool and Executor basics (completion, ordering,
// exception propagation), the frozen seed-derivation formulas, and the
// headline determinism guarantee — a parallel repeatability study is
// bit-identical to the serial one on both chip configurations.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "cpa/correlation.h"
#include "runtime/executor.h"
#include "runtime/seed.h"
#include "runtime/thread_pool.h"
#include "sim/experiment.h"
#include "util/rng.h"

namespace clockmark {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    runtime::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { ++count; });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, AtLeastOneWorker) {
  runtime::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  {
    runtime::ThreadPool p(1);
    p.submit([&ran] { ran = true; });
  }
  EXPECT_TRUE(ran.load());
}

TEST(Executor, ParallelForCoversEveryIndexExactlyOnce) {
  runtime::Executor executor(8);
  EXPECT_EQ(executor.thread_count(), 8u);
  std::vector<std::atomic<int>> hits(1000);
  executor.parallel_for(hits.size(),
                        [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Executor, ParallelMapPreservesIndexOrder) {
  runtime::Executor executor(8);
  const auto out = executor.parallel_map<std::size_t>(
      777, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 777u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Executor, SingleThreadRunsInline) {
  runtime::Executor executor(1);
  EXPECT_EQ(executor.thread_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(16);
  executor.parallel_for(ids.size(), [&](std::size_t i) {
    ids[i] = std::this_thread::get_id();
  });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(Executor, ZeroAndOneItemAreFine) {
  runtime::Executor executor(4);
  executor.parallel_for(0, [](std::size_t) { FAIL(); });
  int calls = 0;
  executor.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(Executor, PropagatesExceptions) {
  runtime::Executor executor(4);
  EXPECT_THROW(
      executor.parallel_for(100,
                            [](std::size_t i) {
                              if (i == 37) {
                                throw std::runtime_error("item 37 failed");
                              }
                            }),
      std::runtime_error);
  try {
    executor.parallel_for(10, [](std::size_t i) {
      if (i >= 5) throw std::invalid_argument("late item");
    });
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "late item");
  }
  // The pool survives a failed loop and keeps working.
  std::atomic<int> count{0};
  executor.parallel_for(50, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 50);
}

TEST(SeedDerive, MatchesFrozenFormulas) {
  // These formulas are the seed-derivation contract: changing them
  // re-rolls every regenerated figure (see runtime/seed.h).
  const std::uint64_t master = 0xC51;
  for (const std::size_t rep :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{99}}) {
    std::uint64_t state =
        master ^ (0xdeadbeefULL + static_cast<std::uint64_t>(rep) * 0x9e37ULL);
    EXPECT_EQ(runtime::derive_phase_seed(master, rep),
              util::splitmix64(state));
    EXPECT_EQ(runtime::derive_acquisition_seed(master, rep),
              master * 0x100000001b3ULL +
                  static_cast<std::uint64_t>(rep) * 0x9e3779b97f4a7c15ULL);
    EXPECT_EQ(runtime::derive_background_seed(master, rep),
              master * 0x9e3779b9ULL + static_cast<std::uint64_t>(rep));
  }
}

TEST(SeedDerive, RepetitionsGetDistinctStreams) {
  const std::uint64_t a0 = runtime::derive_acquisition_seed(0xC51, 0);
  const std::uint64_t a1 = runtime::derive_acquisition_seed(0xC51, 1);
  EXPECT_NE(a0, a1);
  EXPECT_NE(runtime::derive_phase_seed(0xC51, 0),
            runtime::derive_phase_seed(0xC51, 1));
  EXPECT_NE(runtime::derive_acquisition_seed(0xC51, 0),
            runtime::derive_acquisition_seed(0xC52, 0));
}

TEST(ParallelCorrelation, NaiveSweepIsBitIdentical) {
  util::Pcg32 rng(7);
  std::vector<double> pattern(127);
  for (auto& v : pattern) v = rng.bernoulli(0.5) ? 1.0 : 0.0;
  std::vector<double> y(4000);
  for (auto& v : y) v = rng.gaussian(2e-3, 1e-4);

  const auto serial = cpa::correlate_rotations(
      y, pattern, cpa::CorrelationMethod::kNaive);
  runtime::Executor executor(8);
  const auto parallel = cpa::correlate_rotations(
      y, pattern, cpa::CorrelationMethod::kNaive, &executor);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    EXPECT_EQ(serial[r], parallel[r]) << "rotation " << r;
  }
}

// --- parallel experiment determinism --------------------------------

sim::ScenarioConfig fast(sim::ChipModel chip) {
  sim::ScenarioConfig cfg = chip == sim::ChipModel::kChip1
                                ? sim::chip1_default()
                                : sim::chip2_default();
  cfg.trace_cycles = 20000;
  cfg.acquisition.scope.noise_v_rms = 2e-3;
  cfg.acquisition.probe.noise_v_rms = 0.5e-3;
  cfg.phase_offset.reset();  // exercise per-repetition phase derivation
  return cfg;
}

void expect_identical(const cpa::RepeatabilityResult& a,
                      const cpa::RepeatabilityResult& b) {
  EXPECT_EQ(a.repetitions, b.repetitions);
  EXPECT_EQ(a.detections, b.detections);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].in_phase_rho, b.samples[i].in_phase_rho);
    EXPECT_EQ(a.samples[i].max_off_phase, b.samples[i].max_off_phase);
    EXPECT_EQ(a.samples[i].detected, b.samples[i].detected);
  }
  EXPECT_EQ(a.in_phase.median, b.in_phase.median);
  EXPECT_EQ(a.in_phase.q_low, b.in_phase.q_low);
  EXPECT_EQ(a.in_phase.q_high, b.in_phase.q_high);
  EXPECT_EQ(a.in_phase.whisker_low, b.in_phase.whisker_low);
  EXPECT_EQ(a.in_phase.whisker_high, b.in_phase.whisker_high);
  EXPECT_EQ(a.in_phase.outliers, b.in_phase.outliers);
  EXPECT_EQ(a.off_phase.median, b.off_phase.median);
  EXPECT_EQ(a.off_phase.q_low, b.off_phase.q_low);
  EXPECT_EQ(a.off_phase.q_high, b.off_phase.q_high);
  EXPECT_EQ(a.off_phase.whisker_low, b.off_phase.whisker_low);
  EXPECT_EQ(a.off_phase.whisker_high, b.off_phase.whisker_high);
  EXPECT_EQ(a.off_phase.outliers, b.off_phase.outliers);
}

TEST(ParallelStudy, Chip1BitIdenticalToSerial) {
  const sim::Scenario scenario(fast(sim::ChipModel::kChip1));
  const auto serial = sim::run_repeatability_study(scenario, 4);
  runtime::Executor executor(4);
  const auto parallel =
      sim::run_repeatability_study(scenario, 4, {}, &executor);
  expect_identical(serial, parallel);
}

TEST(ParallelStudy, Chip2BitIdenticalToSerial) {
  const sim::Scenario scenario(fast(sim::ChipModel::kChip2));
  const auto serial = sim::run_repeatability_study(scenario, 4);
  runtime::Executor executor(8);
  const auto parallel =
      sim::run_repeatability_study(scenario, 4, {}, &executor);
  expect_identical(serial, parallel);
}

TEST(ParallelStudy, ThreadCountDoesNotChangeResults) {
  const sim::Scenario scenario(fast(sim::ChipModel::kChip1));
  runtime::Executor two(2);
  runtime::Executor five(5);
  const auto a = sim::run_repeatability_study(scenario, 3, {}, &two);
  const auto b = sim::run_repeatability_study(scenario, 3, {}, &five);
  expect_identical(a, b);
}

}  // namespace
}  // namespace clockmark
