// End-to-end integration tests: the full paper pipeline at reduced trace
// length (20k cycles instead of 300k) with a crisper measurement chain so
// the tests stay fast and deterministic while exercising every stage:
// gate-level watermark -> SoC background -> acquisition -> CPA -> verdict.
#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace clockmark::sim {
namespace {

ScenarioConfig fast(ChipModel chip, bool active) {
  ScenarioConfig cfg =
      chip == ChipModel::kChip1 ? chip1_default() : chip2_default();
  cfg.trace_cycles = 20000;
  cfg.watermark_active = active;
  cfg.acquisition.scope.noise_v_rms = 2e-3;
  cfg.acquisition.probe.noise_v_rms = 0.5e-3;
  return cfg;
}

TEST(EndToEnd, Chip1ActiveWatermarkDetectedAtTruePhase) {
  Scenario sc(fast(ChipModel::kChip1, true));
  const auto exp = run_detection(sc, 0);
  EXPECT_TRUE(exp.detection.detected) << exp.detection.reason;
  // The PDN filter delays the peak by at most a couple of rotations.
  const auto peak = static_cast<long>(exp.detection.spectrum.peak_rotation);
  EXPECT_NEAR(static_cast<double>(peak), 3800.0, 2.0);
  EXPECT_GT(exp.detection.spectrum.peak_z, 10.0);
}

TEST(EndToEnd, Chip1InactiveWatermarkNotDetected) {
  Scenario sc(fast(ChipModel::kChip1, false));
  const auto exp = run_detection(sc, 0);
  EXPECT_FALSE(exp.detection.detected) << exp.detection.reason;
}

TEST(EndToEnd, Chip2ActiveWatermarkDetected) {
  Scenario sc(fast(ChipModel::kChip2, true));
  const auto exp = run_detection(sc, 0);
  EXPECT_TRUE(exp.detection.detected) << exp.detection.reason;
  const auto peak = static_cast<long>(exp.detection.spectrum.peak_rotation);
  EXPECT_NEAR(static_cast<double>(peak), 2400.0, 2.0);
}

TEST(EndToEnd, Chip2InactiveWatermarkNotDetected) {
  Scenario sc(fast(ChipModel::kChip2, false));
  const auto exp = run_detection(sc, 0);
  EXPECT_FALSE(exp.detection.detected) << exp.detection.reason;
}

TEST(EndToEnd, RepeatabilityAllDetections) {
  // Mini Fig. 6: 5 repetitions must all detect; in-phase box clearly
  // above the off-phase box.
  Scenario sc(fast(ChipModel::kChip1, true));
  const auto result = run_repeatability_study(sc, 5);
  EXPECT_EQ(result.detections, 5u);
  EXPECT_GT(result.in_phase.median, 3.0 * result.off_phase.q_high);
}

TEST(EndToEnd, RepeatabilityInactiveNeverDetects) {
  Scenario sc(fast(ChipModel::kChip1, false));
  const auto result = run_repeatability_study(sc, 5);
  EXPECT_EQ(result.detections, 0u);
}

TEST(EndToEnd, DetectionSurvivesUnpinnedPhase) {
  auto cfg = fast(ChipModel::kChip1, true);
  cfg.phase_offset.reset();
  Scenario sc(cfg);
  for (std::size_t rep = 0; rep < 3; ++rep) {
    const auto exp = run_detection(sc, rep);
    EXPECT_TRUE(exp.detection.detected) << "rep " << rep;
    const long peak =
        static_cast<long>(exp.detection.spectrum.peak_rotation);
    const long truth = static_cast<long>(exp.scenario.true_rotation);
    const long period = 4095;
    const long dist = std::min((peak - truth + period) % period,
                               (truth - peak + period) % period);
    EXPECT_LE(dist, 2) << "rep " << rep;
  }
}

TEST(EndToEnd, WorkloadDoesNotMaskWatermark) {
  // Detection works under a generated random workload too, not just the
  // Dhrystone-like program.
  auto cfg = fast(ChipModel::kChip1, true);
  cpu::WorkloadMix mix;
  mix.seed = 5;
  cfg.program = cpu::generate_workload_source(mix);
  Scenario sc(cfg);
  const auto exp = run_detection(sc, 0);
  EXPECT_TRUE(exp.detection.detected) << exp.detection.reason;
}

TEST(EndToEnd, SmallerWatermarkBlockStillDetectedCloseUp) {
  // A quarter-size modulated block (8 words) lowers amplitude: with the
  // crisp test-noise settings it must still be detected.
  auto cfg = fast(ChipModel::kChip1, true);
  cfg.watermark.words = 8;
  cfg.trace_cycles = 60000;  // quarter amplitude needs more cycles
  Scenario sc(cfg);
  const auto exp = run_detection(sc, 0);
  EXPECT_TRUE(exp.detection.detected) << exp.detection.reason;
}

TEST(EndToEnd, DeterministicGivenSeedAndRepetition) {
  auto cfg = fast(ChipModel::kChip1, true);
  Scenario a(cfg), b(cfg);
  const auto ra = a.run(3);
  const auto rb = b.run(3);
  EXPECT_EQ(ra.acquisition.per_cycle_power_w,
            rb.acquisition.per_cycle_power_w);
}

}  // namespace
}  // namespace clockmark::sim
