// The cm_serve detection service: fair-queue scheduling, broker
// governance (memo sharing, pinning, quotas), service verdicts
// bit-identical to direct detect::Session runs (chips I and II, 64 jobs
// over 4 tenants), cooperative cancellation at chunk boundaries, the
// wire protocol's codec + malformed-input rejection, and the TCP
// host / client pair end to end.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "attack/desync.h"
#include "detect/session.h"
#include "dsp/fft_plan.h"
#include "measure/trace_io.h"
#include "serve/broker.h"
#include "serve/client.h"
#include "serve/host.h"
#include "serve/protocol.h"
#include "serve/queue.h"
#include "serve/service.h"
#include "sim/scenario.h"
#include "stream/trace_source.h"

namespace {

using namespace clockmark;

serve::ScenarioRef fast_ref(int chip, std::size_t cycles = 12000,
                            std::uint64_t seed = 1) {
  serve::ScenarioRef ref;
  ref.chip = chip;
  ref.trace_cycles = cycles;
  ref.seed = seed;
  // The test-suite noise overrides: short traces stay deterministic.
  ref.scope_noise_v_rms = 2e-3;
  ref.probe_noise_v_rms = 0.5e-3;
  return ref;
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

void expect_identical(const cpa::DetectionResult& a,
                      const cpa::DetectionResult& b) {
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.spectrum.rho, b.spectrum.rho);  // bit-identical
  EXPECT_EQ(a.spectrum.peak_rotation, b.spectrum.peak_rotation);
  EXPECT_EQ(a.spectrum.peak_z, b.spectrum.peak_z);
}

/// A source the test holds by the throat: yields `gate_after` chunks
/// freely, then blocks until release() — the seam for asserting that a
/// cancel lands exactly at the next chunk boundary.
class GatedSource : public stream::TraceSource {
 public:
  GatedSource(std::size_t chunk_cycles, std::size_t chunks,
              std::size_t gate_after)
      : chunk_cycles_(chunk_cycles), chunks_(chunks),
        gate_after_(gate_after) {}

  std::optional<stream::Chunk> next() override {
    if (index_ >= chunks_) return std::nullopt;
    if (index_ == gate_after_) {
      delivered_gate_.set_value();
      released_.get_future().wait();
    }
    stream::Chunk chunk;
    chunk.index = index_;
    chunk.start_cycle = index_ * chunk_cycles_;
    chunk.values.assign(chunk_cycles_, 1e-3 * static_cast<double>(index_ + 1));
    ++index_;
    return chunk;
  }

  std::size_t total_cycles() const override {
    return chunks_ * chunk_cycles_;
  }

  /// Resolves once the source is parked before chunk `gate_after`.
  std::future<void> gate_reached() { return delivered_gate_.get_future(); }
  void release() { released_.set_value(); }

 private:
  std::size_t chunk_cycles_;
  std::size_t chunks_;
  std::size_t gate_after_;
  std::size_t index_ = 0;
  std::promise<void> delivered_gate_;
  std::promise<void> released_;
};

std::vector<double> square_pattern(std::size_t period = 64) {
  std::vector<double> pattern(period);
  for (std::size_t i = 0; i < period; ++i) {
    pattern[i] = i < period / 2 ? 1.0 : -1.0;
  }
  return pattern;
}

// --- FairQueue ------------------------------------------------------

TEST(ServeQueue, HighestPriorityLevelServedFirst) {
  serve::FairQueue<int> q(8);
  ASSERT_TRUE(q.push(1, serve::JobPriority::kLow, "t"));
  ASSERT_TRUE(q.push(2, serve::JobPriority::kNormal, "t"));
  ASSERT_TRUE(q.push(3, serve::JobPriority::kHigh, "t"));
  ASSERT_TRUE(q.push(4, serve::JobPriority::kHigh, "t"));
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 4);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 1);
}

TEST(ServeQueue, RoundRobinsTenantsWithinALevel) {
  serve::FairQueue<std::string> q(16);
  // Tenant a floods; tenants b and c submit one job each afterwards.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        q.push("a" + std::to_string(i), serve::JobPriority::kNormal, "a"));
  }
  ASSERT_TRUE(q.push("b0", serve::JobPriority::kNormal, "b"));
  ASSERT_TRUE(q.push("c0", serve::JobPriority::kNormal, "c"));
  // The rotation serves each live lane in turn: b and c are not starved
  // behind a's backlog.
  EXPECT_EQ(q.pop(), "a0");
  EXPECT_EQ(q.pop(), "b0");
  EXPECT_EQ(q.pop(), "c0");
  EXPECT_EQ(q.pop(), "a1");
  EXPECT_EQ(q.pop(), "a2");
  EXPECT_EQ(q.pop(), "a3");
}

TEST(ServeQueue, TryPushRespectsCapacityAndTryRemovePullsQueued) {
  serve::FairQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1, serve::JobPriority::kNormal, "t"));
  EXPECT_TRUE(q.try_push(2, serve::JobPriority::kNormal, "t"));
  EXPECT_FALSE(q.try_push(3, serve::JobPriority::kNormal, "t"));  // full
  const auto removed = q.try_remove([](int v) { return v == 1; });
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, 1);
  EXPECT_FALSE(q.try_remove([](int v) { return v == 1; }).has_value());
  EXPECT_TRUE(q.try_push(3, serve::JobPriority::kNormal, "t"));
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);

  const serve::JobQueueStats stats = q.stats();
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_EQ(stats.pushes, 3u);
  EXPECT_EQ(stats.pops, 2u);
  EXPECT_EQ(stats.removed, 1u);
  EXPECT_EQ(stats.high_water, 2u);
}

TEST(ServeQueue, CloseDrainsThenStopsPoppersAndPushers) {
  serve::FairQueue<int> q(4);
  ASSERT_TRUE(q.push(7, serve::JobPriority::kNormal, "t"));
  q.close();
  EXPECT_FALSE(q.push(8, serve::JobPriority::kNormal, "t"));
  EXPECT_FALSE(q.try_push(8, serve::JobPriority::kNormal, "t"));
  EXPECT_EQ(q.pop(), 7);                 // buffered items drain
  EXPECT_FALSE(q.pop().has_value());     // then poppers stop
}

TEST(ServeQueue, BlockedPushCompletesWhenRoomAppears) {
  serve::FairQueue<int> q(1);
  ASSERT_TRUE(q.push(1, serve::JobPriority::kNormal, "t"));
  std::thread pusher([&] {
    EXPECT_TRUE(q.push(2, serve::JobPriority::kNormal, "t"));
  });
  EXPECT_EQ(q.pop(), 1);  // frees the slot, wakes the pusher
  pusher.join();
  EXPECT_EQ(q.pop(), 2);
  EXPECT_GE(q.stats().push_waits, 0u);
}

// --- ResourceBroker -------------------------------------------------

TEST(ServeBroker, ScenarioMemoSharedAcrossTenantsAndRepetitions) {
  serve::ResourceBroker broker;
  serve::ScenarioRef ref = fast_ref(1, 4000);
  bool hit = true;
  const auto first = broker.scenario("tenant-a", ref, &hit);
  EXPECT_FALSE(hit);
  ref.repetition = 17;  // repetition is not part of the memo identity
  const auto second = broker.scenario("tenant-b", ref, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());

  const serve::BrokerStats stats = broker.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ServeBroker, ScenarioConfigMappingMatchesRef) {
  serve::ScenarioRef ref = fast_ref(2, 5000, 42);
  ref.watermark_active = false;
  const sim::ScenarioConfig cfg = serve::to_scenario_config(ref);
  EXPECT_EQ(cfg.trace_cycles, 5000u);
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_FALSE(cfg.watermark_active);
  EXPECT_EQ(cfg.acquisition.scope.noise_v_rms, 2e-3);
  EXPECT_EQ(cfg.acquisition.probe.noise_v_rms, 0.5e-3);
  EXPECT_EQ(cfg.chip, sim::ChipModel::kChip2);
}

TEST(ServeBroker, EvictionIsLruButNeverTouchesPinnedEntries) {
  serve::BrokerConfig config;
  config.max_entries = 1;
  config.max_bytes = 8u << 20u;
  serve::ResourceBroker broker(config);

  // Hold entry A: while a "job" pins it, B cannot displace it — B is
  // handed out unretained instead of breaking the running job's memo.
  auto a = broker.scenario("t", fast_ref(1, 4000, 1));
  bool hit = true;
  auto b = broker.scenario("t", fast_ref(1, 4000, 2), &hit);
  EXPECT_FALSE(hit);
  ASSERT_NE(b, nullptr);
  serve::BrokerStats stats = broker.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.uncached, 1u);
  EXPECT_EQ(stats.evictions, 0u);

  // Release the pin: the next build evicts A (the LRU) and retains C.
  a.reset();
  b.reset();
  auto c = broker.scenario("t", fast_ref(1, 4000, 3));
  ASSERT_NE(c, nullptr);
  stats = broker.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  // A is gone: re-acquiring it is a miss again.
  c.reset();
  broker.scenario("t", fast_ref(1, 4000, 1), &hit);
  EXPECT_FALSE(hit);
}

TEST(ServeBroker, TenantQuotaEvictsOwnEntriesOnly) {
  serve::BrokerConfig config;
  const std::size_t memo_bytes = 4000 * 3 * sizeof(double) + (1u << 20u);
  config.tenant_max_bytes = memo_bytes + memo_bytes / 2;  // fits one memo
  serve::ResourceBroker broker(config);

  {
    const auto a1 = broker.scenario("a", fast_ref(1, 4000, 1));
    const auto b1 = broker.scenario("b", fast_ref(1, 4000, 2));
  }  // unpin
  // Tenant a's second memo exceeds its quota: its own first memo is
  // evicted; tenant b's entry survives.
  broker.scenario("a", fast_ref(1, 4000, 3));
  const serve::BrokerStats stats = broker.stats();
  EXPECT_EQ(stats.evictions, 1u);
  ASSERT_EQ(stats.tenants.count("b"), 1u);
  EXPECT_EQ(stats.tenants.at("b").entries, 1u);
  ASSERT_EQ(stats.tenants.count("a"), 1u);
  EXPECT_EQ(stats.tenants.at("a").entries, 1u);
  bool hit = false;
  broker.scenario("b", fast_ref(1, 4000, 2), &hit);
  EXPECT_TRUE(hit);  // b's memo was never a's eviction victim
}

TEST(ServeBroker, PlanHandlesComeFromTheProcessRegistry) {
  serve::ResourceBroker broker;
  EXPECT_EQ(broker.plan("t", 0), nullptr);
  EXPECT_EQ(broker.plan("t", dsp::kMaxPlannedFftSize + 1), nullptr);
  bool hit = true;
  const auto plan = broker.plan("t", 1024, &hit);
  EXPECT_FALSE(hit);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan.get(), dsp::get_fft_plan(1024).get());  // same registry plan
  broker.plan("t", 1024, &hit);
  EXPECT_TRUE(hit);
}

TEST(ServeBroker, EngineRequestsDelegateToTheSharedEngineCache) {
  serve::ResourceBroker broker;
  const std::vector<double> pattern = square_pattern();
  bool hit = true;
  const auto first = broker.engine("a", pattern, &hit);
  EXPECT_FALSE(hit);
  const auto second = broker.engine("b", pattern, &hit);
  EXPECT_TRUE(hit);  // engines are shared freely across tenants
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(broker.stats().engines.hits, 1u);
}

// --- DetectionService -----------------------------------------------

TEST(ServeService, InvalidSpecIsRejectedImmediately) {
  serve::DetectionService service;
  serve::JobSpec empty;  // no payload at all
  const serve::JobTicket ticket = service.submit(empty);
  ASSERT_EQ(ticket.result.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const serve::JobResult result = ticket.result.get();
  EXPECT_EQ(result.status, serve::JobStatus::kRejected);
  EXPECT_NE(result.error.find("payload"), std::string::npos);

  serve::JobSpec two = empty;
  two.trace = std::vector<double>(16, 0.0);
  two.pattern = square_pattern();
  two.trace_file = "also-a-file";
  EXPECT_EQ(service.submit(two).result.get().status,
            serve::JobStatus::kRejected);
  EXPECT_EQ(service.stats().rejected, 2u);
}

TEST(ServeService, ScenarioJobMatchesDirectSessionBitIdentical) {
  serve::DetectionService service;
  for (const int chip : {1, 2}) {
    const serve::ScenarioRef ref = fast_ref(chip);
    serve::JobSpec spec;
    spec.tenant = "chips";
    spec.scenario = ref;
    const serve::JobResult result = service.submit(spec).result.get();
    ASSERT_EQ(result.status, serve::JobStatus::kDone) << result.error;

    const sim::Scenario direct(serve::to_scenario_config(ref));
    const detect::Report expected = detect::Session().run(direct, 0);
    expect_identical(result.report.detection, expected.detection);
    EXPECT_EQ(result.report.detected, expected.detected);
    EXPECT_EQ(result.report.cycles, expected.cycles);
  }
}

TEST(ServeService, InlineTraceJobMatchesSessionSpanRun) {
  const sim::Scenario sc(serve::to_scenario_config(fast_ref(1)));
  const auto r = sc.run(0);

  serve::DetectionService service;
  serve::JobSpec spec;
  spec.pattern = r.pattern;
  spec.trace = r.acquisition.per_cycle_power_w;
  const serve::JobResult result = service.submit(spec).result.get();
  ASSERT_EQ(result.status, serve::JobStatus::kDone) << result.error;

  const detect::Session session({}, r.pattern);
  const detect::Report expected = session.run(r.acquisition.per_cycle_power_w);
  expect_identical(result.report.detection, expected.detection);
}

TEST(ServeService, BlindFileJobMatchesRunFileBitIdentical) {
  const sim::Scenario sc(serve::to_scenario_config(fast_ref(1, 20000)));
  const auto r = sc.run(0);
  attack::DesyncAttack a;
  a.kind = attack::DesyncKind::kFixedOffset;
  a.offset_cycles = 14.2;
  const std::vector<double> attacked =
      attack::apply_desync(r.acquisition.per_cycle_power_w, a);
  const std::string path = temp_path("serve_blind.cmtrace");
  measure::write_trace_binary(path, attacked, measure::TraceMeta{});

  serve::DetectionService service;
  serve::JobSpec spec;
  spec.pattern = r.pattern;
  spec.trace_file = path;
  spec.request.sync = sync::SyncPolicy::kBlind;
  const serve::JobResult result = service.submit(spec).result.get();
  ASSERT_EQ(result.status, serve::JobStatus::kDone) << result.error;
  ASSERT_TRUE(result.report.sync.has_value());
  EXPECT_TRUE(result.report.sync->locked);
  EXPECT_TRUE(result.report.detected);

  // The batch-mode service run is Session::run_file with early stop off
  // and a full-trace lock — assert bit-identity against exactly that.
  detect::Request direct = spec.request;
  direct.streaming.early_stop = false;
  direct.lock_cycles = attacked.size();
  const detect::Report expected =
      detect::Session(direct, r.pattern).run_file(path);
  expect_identical(result.report.detection, expected.detection);
  EXPECT_EQ(result.report.sync->peak_z, expected.sync->peak_z);
  std::remove(path.c_str());
}

TEST(ServeService, SixtyFourJobsFourTenantsBitIdentical) {
  // The acceptance load: 64 queued jobs, 4 tenants, one worker. Four
  // distinct captures (one per tenant seed), every verdict bit-identical
  // to a direct Session run of the same capture.
  constexpr std::size_t kJobs = 64;
  constexpr std::size_t kTenants = 4;
  std::vector<serve::ScenarioRef> refs;
  std::vector<detect::Report> expected;
  for (std::size_t t = 0; t < kTenants; ++t) {
    refs.push_back(fast_ref(1, 8000, 10 + t));
    const sim::Scenario direct(serve::to_scenario_config(refs.back()));
    expected.push_back(detect::Session().run(direct, 0));
  }

  serve::ServiceConfig config;
  config.queue_capacity = kJobs;
  serve::DetectionService service(config);
  std::vector<serve::JobTicket> tickets;
  for (std::size_t i = 0; i < kJobs; ++i) {
    serve::JobSpec spec;
    spec.tenant = "tenant-" + std::to_string(i % kTenants);
    spec.priority = static_cast<serve::JobPriority>(i % 3);
    spec.scenario = refs[i % kTenants];
    tickets.push_back(service.submit(std::move(spec)));
  }
  for (std::size_t i = 0; i < kJobs; ++i) {
    const serve::JobResult result = tickets[i].result.get();
    ASSERT_EQ(result.status, serve::JobStatus::kDone) << result.error;
    expect_identical(result.report.detection,
                     expected[i % kTenants].detection);
  }

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, kJobs);
  // Four characterisations total; the other 60 jobs rode the memos.
  EXPECT_EQ(stats.broker.misses, kTenants);
  EXPECT_EQ(stats.broker.hits, kJobs - kTenants);
}

TEST(ServeService, CancelRunningJobStopsAtNextChunkBoundary) {
  constexpr std::size_t kChunk = 1024;
  auto source = std::make_shared<GatedSource>(kChunk, /*chunks=*/8,
                                              /*gate_after=*/1);
  serve::DetectionService service;
  serve::JobSpec spec;
  spec.pattern = square_pattern();
  spec.source_fn = [source] {
    // Hand the service a view of the shared gate.
    class Borrowed : public stream::TraceSource {
     public:
      explicit Borrowed(std::shared_ptr<GatedSource> inner)
          : inner_(std::move(inner)) {}
      std::optional<stream::Chunk> next() override { return inner_->next(); }
      std::size_t total_cycles() const override {
        return inner_->total_cycles();
      }

     private:
      std::shared_ptr<GatedSource> inner_;
    };
    return std::make_unique<Borrowed>(source);
  };

  const serve::JobTicket ticket = service.submit(std::move(spec));
  // The worker ingested chunk 0 and is parked inside next() for chunk 1.
  source->gate_reached().wait();
  EXPECT_TRUE(service.cancel(ticket.id));
  source->release();

  const serve::JobResult result = ticket.result.get();
  EXPECT_EQ(result.status, serve::JobStatus::kCancelled);
  // Stopped at the chunk boundary: exactly the one pre-gate chunk was
  // ingested; the released chunk was never fed to the detector.
  EXPECT_EQ(result.report.cycles, kChunk);
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(ServeService, CancelQueuedJobResolvesOnCallersThread) {
  auto blocker = std::make_shared<GatedSource>(256, /*chunks=*/4,
                                               /*gate_after=*/0);
  serve::DetectionService service;  // one worker
  serve::JobSpec busy;
  busy.pattern = square_pattern();
  busy.source_fn = [blocker] {
    class Borrowed : public stream::TraceSource {
     public:
      explicit Borrowed(std::shared_ptr<GatedSource> inner)
          : inner_(std::move(inner)) {}
      std::optional<stream::Chunk> next() override { return inner_->next(); }
      std::size_t total_cycles() const override {
        return inner_->total_cycles();
      }

     private:
      std::shared_ptr<GatedSource> inner_;
    };
    return std::make_unique<Borrowed>(blocker);
  };
  const serve::JobTicket running = service.submit(std::move(busy));
  blocker->gate_reached().wait();  // the lone worker is busy

  serve::JobSpec queued;
  queued.pattern = square_pattern();
  queued.trace = std::vector<double>(512, 1e-3);
  const serve::JobTicket victim = service.submit(std::move(queued));
  ASSERT_TRUE(service.cancel(victim.id));
  // The cancel itself resolved the future — no worker ever saw the job.
  ASSERT_EQ(victim.result.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  const serve::JobResult result = victim.result.get();
  EXPECT_EQ(result.status, serve::JobStatus::kCancelled);
  EXPECT_EQ(result.report.cycles, 0u);
  EXPECT_EQ(result.timing.run_s, 0.0);

  EXPECT_FALSE(service.cancel(victim.id));  // already terminal
  blocker->release();
  running.result.wait();
}

TEST(ServeService, MaxCyclesBudgetDecidesOnThePrefix) {
  const sim::Scenario sc(serve::to_scenario_config(fast_ref(1)));
  const auto r = sc.run(0);
  const std::size_t budget = 5000;

  serve::ServiceConfig config;
  config.chunk_cycles = 1024;  // budget is not chunk-aligned on purpose
  serve::DetectionService service(config);
  serve::JobSpec spec;
  spec.pattern = r.pattern;
  spec.trace = r.acquisition.per_cycle_power_w;
  spec.max_cycles = budget;
  const serve::JobResult result = service.submit(spec).result.get();
  ASSERT_EQ(result.status, serve::JobStatus::kDone) << result.error;
  EXPECT_EQ(result.report.cycles, budget);

  // The verdict is the one the prefix earns.
  const std::vector<double> prefix(
      r.acquisition.per_cycle_power_w.begin(),
      r.acquisition.per_cycle_power_w.begin() + budget);
  const detect::Report expected =
      detect::Session({}, r.pattern).run(prefix);
  expect_identical(result.report.detection, expected.detection);
}

TEST(ServeService, BackpressureRejectsWhenConfiguredAndQueueFull) {
  auto blocker = std::make_shared<GatedSource>(256, 2, 0);
  serve::ServiceConfig config;
  config.queue_capacity = 1;
  config.reject_when_full = true;
  serve::DetectionService service(config);

  serve::JobSpec busy;
  busy.pattern = square_pattern();
  busy.source_fn = [blocker]() -> std::unique_ptr<stream::TraceSource> {
    class Borrowed : public stream::TraceSource {
     public:
      explicit Borrowed(std::shared_ptr<GatedSource> inner)
          : inner_(std::move(inner)) {}
      std::optional<stream::Chunk> next() override { return inner_->next(); }
      std::size_t total_cycles() const override {
        return inner_->total_cycles();
      }

     private:
      std::shared_ptr<GatedSource> inner_;
    };
    return std::make_unique<Borrowed>(blocker);
  };
  const serve::JobTicket running = service.submit(std::move(busy));
  blocker->gate_reached().wait();

  serve::JobSpec fill;
  fill.pattern = square_pattern();
  fill.trace = std::vector<double>(128, 0.0);
  const serve::JobTicket queued = service.submit(fill);
  const serve::JobResult overflow = service.submit(fill).result.get();
  EXPECT_EQ(overflow.status, serve::JobStatus::kRejected);
  EXPECT_NE(overflow.error.find("queue full"), std::string::npos);

  blocker->release();
  running.result.wait();
  queued.result.wait();
  service.drain();
  EXPECT_EQ(service.stats().rejected, 1u);
}

TEST(ServeService, OnCompleteFiresForEveryAcceptedJob) {
  std::atomic<int> callbacks{0};
  serve::ServiceConfig config;
  config.on_complete = [&](const serve::JobResult&) { ++callbacks; };
  serve::DetectionService service(config);

  serve::JobSpec spec;
  spec.pattern = square_pattern();
  spec.trace = std::vector<double>(2048, 1e-3);
  service.submit(spec).result.wait();
  service.submit(spec).result.wait();
  service.drain();
  EXPECT_EQ(callbacks.load(), 2);

  // Submit-time rejections resolve the future directly, no callback.
  service.submit(serve::JobSpec{}).result.wait();
  EXPECT_EQ(callbacks.load(), 2);
}

TEST(ServeService, ShutdownWithoutDrainCancelsQueuedJobs) {
  auto blocker = std::make_shared<GatedSource>(256, 2, 0);
  auto service = std::make_unique<serve::DetectionService>();
  serve::JobSpec busy;
  busy.pattern = square_pattern();
  busy.source_fn = [blocker]() -> std::unique_ptr<stream::TraceSource> {
    class Borrowed : public stream::TraceSource {
     public:
      explicit Borrowed(std::shared_ptr<GatedSource> inner)
          : inner_(std::move(inner)) {}
      std::optional<stream::Chunk> next() override { return inner_->next(); }
      std::size_t total_cycles() const override {
        return inner_->total_cycles();
      }

     private:
      std::shared_ptr<GatedSource> inner_;
    };
    return std::make_unique<Borrowed>(blocker);
  };
  const serve::JobTicket running = service->submit(std::move(busy));
  blocker->gate_reached().wait();
  serve::JobSpec queued;
  queued.pattern = square_pattern();
  queued.trace = std::vector<double>(512, 1e-3);
  const serve::JobTicket waiting = service->submit(std::move(queued));

  // shutdown(false) flags every active token, resolves the queued job
  // and only then joins the workers — so the queued job's future is
  // ready while the running one is still parked at the gate, and the
  // release below deterministically lands on an already-cancelled job.
  std::thread stopper([&] { service->shutdown(/*drain_queued=*/false); });
  EXPECT_EQ(waiting.result.get().status, serve::JobStatus::kCancelled);
  blocker->release();
  stopper.join();
  EXPECT_EQ(running.result.get().status, serve::JobStatus::kCancelled);
  EXPECT_EQ(service->submit(serve::JobSpec{}).result.get().status,
            serve::JobStatus::kRejected);
}

// --- Wire protocol --------------------------------------------------

serve::JobSpec wire_spec() {
  serve::JobSpec spec;
  spec.tenant = "acme";
  spec.priority = serve::JobPriority::kHigh;
  spec.mode = serve::JobMode::kStream;
  spec.max_cycles = 123456;
  spec.pattern = {1.0, -1.0, 0.5, -0.25};
  spec.request.sync = sync::SyncPolicy::kBlind;
  spec.request.method = cpa::CorrelationMethod::kFft;
  spec.request.policy.min_peak_z = 6.25;
  spec.request.lock_cycles = 4096;
  spec.request.streaming.chunk_cycles = 512;
  spec.request.streaming.early_stop = true;
  spec.request.streaming.confidence_threshold = 0.75;
  spec.request.use_file_meta = false;
  spec.trace = std::vector<double>{0.125, -3.5, 2.75, 0.0, 1e-9};
  spec.trace_meta.clock_hz = 1e7;
  spec.trace_meta.sample_rate_hz = 5e8;
  spec.trace_meta.trigger_offset_cycles = -3.25;
  return spec;
}

TEST(ServeProtocol, SubmitRoundTripPreservesEveryField) {
  const serve::JobSpec spec = wire_spec();
  const serve::JobSpec back = serve::decode_submit(serve::encode_submit(spec));
  EXPECT_EQ(back.tenant, spec.tenant);
  EXPECT_EQ(back.priority, spec.priority);
  EXPECT_EQ(back.mode, spec.mode);
  EXPECT_EQ(back.max_cycles, spec.max_cycles);
  EXPECT_EQ(back.pattern, spec.pattern);
  EXPECT_EQ(back.request.sync, spec.request.sync);
  EXPECT_EQ(back.request.method, spec.request.method);
  EXPECT_EQ(back.request.policy.min_peak_z, spec.request.policy.min_peak_z);
  EXPECT_EQ(back.request.lock_cycles, spec.request.lock_cycles);
  EXPECT_EQ(back.request.streaming.chunk_cycles,
            spec.request.streaming.chunk_cycles);
  EXPECT_EQ(back.request.streaming.early_stop,
            spec.request.streaming.early_stop);
  EXPECT_EQ(back.request.streaming.confidence_threshold,
            spec.request.streaming.confidence_threshold);
  EXPECT_EQ(back.request.use_file_meta, spec.request.use_file_meta);
  ASSERT_TRUE(back.trace.has_value());
  EXPECT_EQ(*back.trace, *spec.trace);  // doubles bit-identical
  EXPECT_EQ(back.trace_meta.clock_hz, spec.trace_meta.clock_hz);
  EXPECT_EQ(back.trace_meta.trigger_offset_cycles,
            spec.trace_meta.trigger_offset_cycles);
}

TEST(ServeProtocol, ScenarioAndFilePayloadsRoundTrip) {
  serve::JobSpec spec;
  spec.scenario = fast_ref(2, 7000, 5);
  spec.scenario->repetition = 3;
  spec.scenario->watermark_active = false;
  serve::JobSpec back = serve::decode_submit(serve::encode_submit(spec));
  ASSERT_TRUE(back.scenario.has_value());
  EXPECT_EQ(back.scenario->chip, 2);
  EXPECT_EQ(back.scenario->trace_cycles, 7000u);
  EXPECT_EQ(back.scenario->seed, 5u);
  EXPECT_EQ(back.scenario->repetition, 3u);
  EXPECT_FALSE(back.scenario->watermark_active);
  EXPECT_EQ(back.scenario->scope_noise_v_rms, 2e-3);

  serve::JobSpec file;
  file.pattern = {1.0, -1.0};
  file.trace_file = "/tmp/capture.cmtrace";
  back = serve::decode_submit(serve::encode_submit(file));
  EXPECT_EQ(back.trace_file, file.trace_file);
  EXPECT_FALSE(back.trace.has_value());
}

TEST(ServeProtocol, SourceFnPayloadCannotCrossTheWire) {
  serve::JobSpec spec;
  spec.pattern = {1.0, -1.0};
  spec.source_fn = [] { return std::unique_ptr<stream::TraceSource>(); };
  EXPECT_THROW(serve::encode_submit(spec), serve::ProtocolError);
}

TEST(ServeProtocol, TruncatedInlineTraceIsRejected) {
  serve::JobSpec spec;
  spec.pattern = {1.0, -1.0};
  spec.trace = std::vector<double>(64, 0.5);
  serve::Frame frame = serve::encode_submit(spec);
  // Chop half the trace samples off the frame: the CMTRACE2 count now
  // claims more cycles than the frame holds.
  frame.payload.resize(frame.payload.size() - 32 * sizeof(double));
  try {
    serve::decode_submit(frame);
    FAIL() << "truncated inline trace must be rejected";
  } catch (const serve::ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(ServeProtocol, MalformedFramesThrowNotCrash) {
  serve::JobSpec spec;
  spec.pattern = {1.0};
  spec.trace = std::vector<double>(4, 0.25);
  serve::Frame frame = serve::encode_submit(spec);

  serve::Frame bad_enum = frame;
  // Payload layout starts: tenant (u32 len + bytes), then priority u8.
  bad_enum.payload[4 + spec.tenant.size()] = 7;  // no such priority
  EXPECT_THROW(serve::decode_submit(bad_enum), serve::ProtocolError);

  serve::Frame trailing = frame;
  trailing.payload.push_back(0xAB);  // trailing garbage
  EXPECT_THROW(serve::decode_submit(trailing), serve::ProtocolError);

  serve::Frame wrong_type = frame;
  wrong_type.type = serve::MsgType::kWait;
  EXPECT_THROW(serve::decode_submit(wrong_type), serve::ProtocolError);

  EXPECT_THROW(
      serve::unpack_frame(std::vector<std::uint8_t>{0x01, 0x02}),
      serve::ProtocolError);
}

TEST(ServeProtocol, ResultRoundTripWithAndWithoutSync) {
  serve::WireResult result;
  result.id = 42;
  result.tenant = "acme";
  result.status = serve::JobStatus::kDone;
  result.detected = true;
  result.confidence = 0.997;
  result.cycles = 123456;
  result.peak_rotation = 17;
  result.peak_z = 9.5;
  result.reason = "peak z 9.5 above threshold";
  result.queue_s = 0.25;
  result.run_s = 1.5;
  result.engine_hit = true;
  result.broker_hits = 3;
  result.engine_misses = 1;
  serve::WireSync sync;
  sync.offset_cycles = -14.2;
  sync.ratio = 1.00008;
  sync.locked = true;
  sync.peak_z = 11.0;
  result.sync = sync;

  const serve::WireResult back =
      serve::decode_result(serve::encode_result(result));
  EXPECT_EQ(back.id, result.id);
  EXPECT_EQ(back.status, result.status);
  EXPECT_EQ(back.detected, result.detected);
  EXPECT_EQ(back.confidence, result.confidence);
  EXPECT_EQ(back.reason, result.reason);
  EXPECT_EQ(back.queue_s, result.queue_s);
  EXPECT_EQ(back.engine_hit, result.engine_hit);
  EXPECT_EQ(back.broker_hits, result.broker_hits);
  ASSERT_TRUE(back.sync.has_value());
  EXPECT_EQ(back.sync->offset_cycles, sync.offset_cycles);
  EXPECT_EQ(back.sync->ratio, sync.ratio);
  EXPECT_TRUE(back.sync->locked);

  result.sync.reset();
  EXPECT_FALSE(serve::decode_result(serve::encode_result(result))
                   .sync.has_value());
}

TEST(ServeProtocol, FrameIoOverAPipeHandlesEofAndTornFrames) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const serve::Frame sent = serve::encode_wait(1234);
  serve::write_frame(fds[1], sent);
  std::optional<serve::Frame> got = serve::read_frame(fds[0]);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(serve::decode_wait(*got), 1234u);

  // Clean EOF between frames: nullopt, not an error.
  ::close(fds[1]);
  EXPECT_FALSE(serve::read_frame(fds[0]).has_value());
  ::close(fds[0]);

  // EOF mid-frame: a torn frame throws.
  ASSERT_EQ(::pipe(fds), 0);
  const std::vector<std::uint8_t> bytes = serve::pack_frame(sent);
  ASSERT_EQ(::write(fds[1], bytes.data(), bytes.size() - 3),
            static_cast<ssize_t>(bytes.size() - 3));
  ::close(fds[1]);
  EXPECT_THROW(serve::read_frame(fds[0]), serve::ProtocolError);
  ::close(fds[0]);
}

// --- LocalClient and Dispatcher -------------------------------------

TEST(ServeLocalClient, SubmitWaitFlowOverTheFullCodec) {
  const sim::Scenario sc(serve::to_scenario_config(fast_ref(1, 8000)));
  const auto r = sc.run(0);
  serve::DetectionService service;
  serve::LocalClient client(service);

  serve::JobSpec spec;
  spec.tenant = "local";
  spec.pattern = r.pattern;
  spec.trace = r.acquisition.per_cycle_power_w;
  const serve::SubmitOutcome outcome = client.submit(spec);
  ASSERT_TRUE(outcome.accepted());
  const serve::WireResult result = client.wait(outcome.id);
  EXPECT_EQ(result.status, serve::JobStatus::kDone);
  EXPECT_EQ(result.cycles, r.acquisition.per_cycle_power_w.size());

  // The wire summary agrees with the full report on the future.
  const detect::Report expected =
      detect::Session({}, r.pattern).run(r.acquisition.per_cycle_power_w);
  EXPECT_EQ(result.detected, expected.detected);
  EXPECT_EQ(result.peak_z, expected.detection.spectrum.peak_z);
  EXPECT_EQ(result.peak_rotation, expected.detection.spectrum.peak_rotation);
}

TEST(ServeLocalClient, RejectionArrivesAsImmediateResult) {
  serve::DetectionService service;
  serve::LocalClient client(service);
  // Encodes fine (it has a payload) but fails service validation: a
  // trace payload with no expected pattern.
  serve::JobSpec spec;
  spec.trace = std::vector<double>(16, 0.0);
  const serve::SubmitOutcome outcome = client.submit(spec);
  ASSERT_FALSE(outcome.accepted());
  EXPECT_EQ(outcome.rejected->status, serve::JobStatus::kRejected);
  EXPECT_NE(outcome.rejected->error.find("pattern"), std::string::npos);

  // A payload-less spec can't even be encoded for the wire.
  EXPECT_THROW(client.submit(serve::JobSpec{}), serve::ProtocolError);
}

TEST(ServeLocalClient, WaitingOnAForeignJobIdFails) {
  serve::DetectionService service;
  serve::LocalClient client(service);
  EXPECT_THROW(client.wait(9999), std::runtime_error);
  EXPECT_FALSE(client.cancel(9999));
}

// --- ServiceHost / TcpClient ----------------------------------------

TEST(ServeHost, EndToEndOverTcpMatchesLocalVerdict) {
  const sim::Scenario sc(serve::to_scenario_config(fast_ref(1, 8000)));
  const auto r = sc.run(0);

  serve::DetectionService service;
  serve::ServiceHost host(service, {});  // ephemeral port
  ASSERT_NE(host.port(), 0);
  serve::TcpClient client("127.0.0.1", host.port());

  serve::JobSpec spec;
  spec.tenant = "tcp";
  spec.pattern = r.pattern;
  spec.trace = r.acquisition.per_cycle_power_w;
  spec.trace_meta.clock_hz = 1e7;
  const serve::SubmitOutcome outcome = client.submit(spec);
  ASSERT_TRUE(outcome.accepted());
  const serve::WireResult result = client.wait(outcome.id);
  EXPECT_EQ(result.status, serve::JobStatus::kDone);

  const detect::Report expected =
      detect::Session({}, r.pattern).run(r.acquisition.per_cycle_power_w);
  EXPECT_EQ(result.detected, expected.detected);
  EXPECT_EQ(result.peak_z, expected.detection.spectrum.peak_z);

  EXPECT_FALSE(client.cancel(outcome.id));  // already terminal
  client.shutdown_server();
  host.wait_for_shutdown();
  host.stop();
  service.shutdown(/*drain_queued=*/true);
}

TEST(ServeHost, StopWithoutClientsShutsDownCleanly) {
  serve::DetectionService service;
  auto host = std::make_unique<serve::ServiceHost>(service,
                                                   serve::HostConfig{});
  EXPECT_NE(host->port(), 0);
  host->stop();
  host->stop();  // idempotent
  host.reset();
}

}  // namespace
