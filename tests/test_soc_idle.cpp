// Idle-window mechanics: the timer-wake model, the duty-cycled workload
// and the schedule built from the SoC's own idle mask (the end-to-end
// path for the paper's "watermark active while the system is inactive"
// usage).
#include <gtest/gtest.h>

#include "cpu/programs.h"
#include "soc/chip1.h"
#include "watermark/scheduler.h"

namespace clockmark::soc {
namespace {

Chip1Config duty_config(std::uint32_t wake_period) {
  Chip1Config cfg;
  cfg.program = cpu::duty_cycled_workload_source();
  cfg.timer_wake_period = wake_period;
  return cfg;
}

TEST(IdleWindows, WorkloadSleepsAndWakes) {
  Chip1Soc chip(duty_config(2000));
  const auto run = chip.run_with_idle(20000);
  const double idle_frac = watermark::effective_duty(run.idle);
  // The burst takes ~1.3k cycles, then WFI until the next 2k boundary:
  // a meaningful fraction of both states must appear.
  EXPECT_GT(idle_frac, 0.05);
  EXPECT_LT(idle_frac, 0.95);
  EXPECT_FALSE(chip.core().faulted());
}

TEST(IdleWindows, NoWakeMeansPermanentSleep) {
  Chip1Soc chip(duty_config(0));  // timer wake disabled
  const auto run = chip.run_with_idle(20000);
  // Once the first WFI is reached the core never wakes again.
  EXPECT_TRUE(run.idle.back());
  EXPECT_TRUE(chip.core().sleeping());
}

TEST(IdleWindows, IdleCyclesAreCheap) {
  Chip1Soc chip(duty_config(2000));
  const auto run = chip.run_with_idle(20000);
  double idle_sum = 0.0, busy_sum = 0.0;
  std::size_t idle_n = 0, busy_n = 0;
  for (std::size_t i = 0; i < run.idle.size(); ++i) {
    if (run.idle[i]) {
      idle_sum += run.power[i];
      ++idle_n;
    } else {
      busy_sum += run.power[i];
      ++busy_n;
    }
  }
  ASSERT_GT(idle_n, 0u);
  ASSERT_GT(busy_n, 0u);
  EXPECT_LT(idle_sum / static_cast<double>(idle_n),
            0.5 * busy_sum / static_cast<double>(busy_n));
}

TEST(IdleWindows, ScheduleFollowsSocIdleMask) {
  Chip1Soc chip(duty_config(2000));
  const auto run = chip.run_with_idle(10000);
  watermark::ScheduleConfig cfg;
  cfg.policy = watermark::SchedulePolicy::kIdleWindows;
  const auto enabled =
      watermark::build_schedule(cfg, run.idle.size(), run.idle);
  EXPECT_EQ(enabled, run.idle);
  // The watermark would then only burn power inside idle windows.
  const std::vector<double> wm(run.idle.size(), 1.5e-3);
  const auto gated = watermark::apply_schedule(wm, enabled, 0.0);
  for (std::size_t i = 0; i < gated.size(); ++i) {
    EXPECT_DOUBLE_EQ(gated[i], run.idle[i] ? 1.5e-3 : 0.0);
  }
}

TEST(IdleWindows, WakePeriodControlsDuty) {
  Chip1Soc fast(duty_config(1600));
  Chip1Soc slow(duty_config(6400));
  const double duty_fast =
      watermark::effective_duty(fast.run_with_idle(30000).idle);
  const double duty_slow =
      watermark::effective_duty(slow.run_with_idle(30000).idle);
  // Longer wake period -> more sleep per window.
  EXPECT_GT(duty_slow, duty_fast);
}

}  // namespace
}  // namespace clockmark::soc
