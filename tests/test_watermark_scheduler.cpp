#include "watermark/scheduler.h"

#include <gtest/gtest.h>

namespace clockmark::watermark {
namespace {

TEST(Scheduler, AlwaysOn) {
  ScheduleConfig cfg;
  const auto s = build_schedule(cfg, 100);
  EXPECT_EQ(s.size(), 100u);
  EXPECT_DOUBLE_EQ(effective_duty(s), 1.0);
}

TEST(Scheduler, DutyCycledWindows) {
  ScheduleConfig cfg;
  cfg.policy = SchedulePolicy::kDutyCycled;
  cfg.window_cycles = 10;
  cfg.duty = 0.3;
  const auto s = build_schedule(cfg, 100);
  EXPECT_NEAR(effective_duty(s), 0.3, 1e-12);
  // Pattern within each window: first 3 on, rest off.
  for (std::size_t w = 0; w < 10; ++w) {
    EXPECT_TRUE(s[w * 10 + 0]);
    EXPECT_TRUE(s[w * 10 + 2]);
    EXPECT_FALSE(s[w * 10 + 3]);
    EXPECT_FALSE(s[w * 10 + 9]);
  }
}

TEST(Scheduler, DutyClamped) {
  ScheduleConfig cfg;
  cfg.policy = SchedulePolicy::kDutyCycled;
  cfg.window_cycles = 8;
  cfg.duty = 2.0;  // clamped to 1
  EXPECT_DOUBLE_EQ(effective_duty(build_schedule(cfg, 64)), 1.0);
  cfg.duty = -1.0;  // clamped to 0
  EXPECT_DOUBLE_EQ(effective_duty(build_schedule(cfg, 64)), 0.0);
}

TEST(Scheduler, ZeroWindowThrows) {
  ScheduleConfig cfg;
  cfg.policy = SchedulePolicy::kDutyCycled;
  cfg.window_cycles = 0;
  EXPECT_THROW(build_schedule(cfg, 10), std::invalid_argument);
}

TEST(Scheduler, IdleWindowsFollowMask) {
  ScheduleConfig cfg;
  cfg.policy = SchedulePolicy::kIdleWindows;
  std::vector<bool> idle = {true, false, false, true, true};
  const auto s = build_schedule(cfg, 5, idle);
  EXPECT_EQ(s, idle);
}

TEST(Scheduler, ShortIdleMaskThrows) {
  ScheduleConfig cfg;
  cfg.policy = SchedulePolicy::kIdleWindows;
  EXPECT_THROW(build_schedule(cfg, 10, std::vector<bool>(5)),
               std::invalid_argument);
}

TEST(Scheduler, ApplyFallsBackToIdlePower) {
  const std::vector<double> wm = {5.0, 5.0, 5.0, 5.0};
  const std::vector<bool> enabled = {true, false, true, false};
  const auto out = apply_schedule(wm, enabled, 0.5);
  EXPECT_EQ(out, (std::vector<double>{5.0, 0.5, 5.0, 0.5}));
}

TEST(Scheduler, ApplyLengthMismatchThrows) {
  EXPECT_THROW(apply_schedule({1.0}, {true, false}, 0.0),
               std::invalid_argument);
}

TEST(Scheduler, EffectiveDutyEmpty) {
  EXPECT_EQ(effective_duty({}), 0.0);
}

}  // namespace
}  // namespace clockmark::watermark
