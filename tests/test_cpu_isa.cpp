#include "cpu/isa.h"

#include <gtest/gtest.h>

namespace clockmark::cpu {
namespace {

class RoundTrip : public ::testing::TestWithParam<Instruction> {};

TEST_P(RoundTrip, EncodeDecodeIdentity) {
  const Instruction in = GetParam();
  const std::uint32_t word = encode(in);
  const auto out = decode(word);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->opcode, in.opcode);
  EXPECT_EQ(out->imm, in.imm);
  if (in.opcode == Opcode::kBc) {
    EXPECT_EQ(out->cond, in.cond);
  }
  if (in.opcode != Opcode::kB && in.opcode != Opcode::kBc &&
      in.opcode != Opcode::kBl) {
    EXPECT_EQ(out->rd, in.rd);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RoundTrip,
    ::testing::Values(
        Instruction{Opcode::kNop, 0, 0, 0, 0, Cond::kAl},
        Instruction{Opcode::kHalt, 0, 0, 0, 0, Cond::kAl},
        Instruction{Opcode::kMovImm, 5, 0, 0, 0xffff, Cond::kAl},
        Instruction{Opcode::kMovTop, 15, 0, 0, 0x1234, Cond::kAl},
        Instruction{Opcode::kAdd, 1, 2, 3, 0, Cond::kAl},
        Instruction{Opcode::kAddImm, 1, 2, 0, -2048, Cond::kAl},
        Instruction{Opcode::kSubImm, 1, 2, 0, 2047, Cond::kAl},
        Instruction{Opcode::kMul, 7, 8, 9, 0, Cond::kAl},
        Instruction{Opcode::kLdr, 3, 13, 0, 1020, Cond::kAl},
        Instruction{Opcode::kStrb, 3, 4, 0, -1, Cond::kAl},
        Instruction{Opcode::kPush, 0, 0, 0, 0x80f0, Cond::kAl},
        Instruction{Opcode::kPop, 0, 0, 0, 0x80f0, Cond::kAl},
        Instruction{Opcode::kB, 0, 0, 0, -100000, Cond::kAl},
        Instruction{Opcode::kB, 0, 0, 0, 524287, Cond::kAl},
        Instruction{Opcode::kBl, 0, 0, 0, -1, Cond::kAl},
        Instruction{Opcode::kBc, 0, 0, 0, -32768, Cond::kLt},
        Instruction{Opcode::kBc, 0, 0, 0, 32767, Cond::kNe},
        Instruction{Opcode::kBx, 0, 14, 0, 0, Cond::kAl}));

TEST(Encode, RangeChecks) {
  EXPECT_THROW(encode({Opcode::kMovImm, 5, 0, 0, 0x10000, Cond::kAl}),
               std::invalid_argument);
  EXPECT_THROW(encode({Opcode::kMovImm, 5, 0, 0, -1, Cond::kAl}),
               std::invalid_argument);
  EXPECT_THROW(encode({Opcode::kAddImm, 5, 0, 0, 2048, Cond::kAl}),
               std::invalid_argument);
  EXPECT_THROW(encode({Opcode::kAddImm, 5, 0, 0, -2049, Cond::kAl}),
               std::invalid_argument);
  EXPECT_THROW(encode({Opcode::kB, 0, 0, 0, 1 << 19, Cond::kAl}),
               std::invalid_argument);
  EXPECT_THROW(encode({Opcode::kBc, 0, 0, 0, 1 << 15, Cond::kEq}),
               std::invalid_argument);
  EXPECT_THROW(encode({Opcode::kAdd, 16, 0, 0, 0, Cond::kAl}),
               std::invalid_argument);
}

TEST(Decode, InvalidOpcodeRejected) {
  EXPECT_FALSE(decode(0xff000000u).has_value());
}

TEST(Decode, ConditionField) {
  const std::uint32_t w =
      encode({Opcode::kBc, 0, 0, 0, 12, Cond::kGe});
  const auto inst = decode(w);
  ASSERT_TRUE(inst.has_value());
  EXPECT_EQ(inst->cond, Cond::kGe);
  EXPECT_EQ(inst->imm, 12);
}

TEST(Classification, WritesRd) {
  EXPECT_TRUE(writes_rd(Opcode::kAdd));
  EXPECT_TRUE(writes_rd(Opcode::kLdr));
  EXPECT_TRUE(writes_rd(Opcode::kMovImm));
  EXPECT_FALSE(writes_rd(Opcode::kCmp));
  EXPECT_FALSE(writes_rd(Opcode::kStr));
  EXPECT_FALSE(writes_rd(Opcode::kB));
  EXPECT_FALSE(writes_rd(Opcode::kHalt));
}

TEST(Classification, MemoryAndBranch) {
  EXPECT_TRUE(is_memory(Opcode::kLdrb));
  EXPECT_TRUE(is_memory(Opcode::kPush));
  EXPECT_FALSE(is_memory(Opcode::kAdd));
  EXPECT_TRUE(is_branch(Opcode::kBc));
  EXPECT_TRUE(is_branch(Opcode::kBx));
  EXPECT_FALSE(is_branch(Opcode::kCmp));
}

TEST(ToString, ReadableForms) {
  EXPECT_EQ(to_string({Opcode::kAdd, 1, 2, 3, 0, Cond::kAl}),
            "add r1, r2, r3");
  EXPECT_EQ(to_string({Opcode::kMovImm, 0, 0, 0, 42, Cond::kAl}),
            "mov r0, #42");
  EXPECT_EQ(to_string({Opcode::kLdr, 3, 13, 0, 8, Cond::kAl}),
            "ldr r3, [sp, #8]");
  EXPECT_EQ(to_string({Opcode::kBx, 0, 14, 0, 0, Cond::kAl}), "bx lr");
  const std::string bc = to_string({Opcode::kBc, 0, 0, 0, 5, Cond::kNe});
  EXPECT_NE(bc.find("bne"), std::string::npos);
}

TEST(Mnemonics, CoverAllOpcodes) {
  for (std::uint8_t op = 0; op <= static_cast<std::uint8_t>(Opcode::kBx);
       ++op) {
    EXPECT_NE(mnemonic(static_cast<Opcode>(op)), "?");
  }
}

}  // namespace
}  // namespace clockmark::cpu
