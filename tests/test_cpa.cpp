#include "cpa/correlation.h"
#include "cpa/detector.h"
#include "cpa/repeatability.h"
#include "cpa/spread_spectrum.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sequence/lfsr.h"
#include "sequence/polynomials.h"
#include "util/rng.h"

namespace clockmark::cpa {
namespace {

std::vector<double> m_sequence_pattern(unsigned width) {
  sequence::Lfsr lfsr(width, sequence::maximal_taps(width), 1);
  std::vector<double> p((1u << width) - 1u);
  for (auto& v : p) v = lfsr.step() ? 1.0 : 0.0;
  return p;
}

/// Synthetic measurement: pattern tiled at `rotation`, amplitude a, plus
/// Gaussian noise sigma.
std::vector<double> synthetic(const std::vector<double>& pattern,
                              std::size_t n, std::size_t rotation, double a,
                              double sigma, std::uint64_t seed) {
  util::Pcg32 rng(seed);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = a * pattern[(i + rotation) % pattern.size()] +
           rng.gaussian(10.0, sigma);
  }
  return y;
}

TEST(ToModelPattern, ConvertsBits) {
  const std::vector<bool> bits = {true, false, true};
  const auto p = to_model_pattern(bits);
  EXPECT_EQ(p, (std::vector<double>{1.0, 0.0, 1.0}));
}

TEST(CorrelateRotations, MethodsAgreeOnRealisticData) {
  const auto pattern = m_sequence_pattern(8);  // P = 255
  const auto y = synthetic(pattern, 5000, 100, 0.5, 1.0, 9);
  const auto naive =
      correlate_rotations(y, pattern, CorrelationMethod::kNaive);
  const auto folded =
      correlate_rotations(y, pattern, CorrelationMethod::kFolded);
  const auto fft = correlate_rotations(y, pattern, CorrelationMethod::kFft);
  for (std::size_t r = 0; r < pattern.size(); ++r) {
    EXPECT_NEAR(naive[r], folded[r], 1e-9);
    EXPECT_NEAR(naive[r], fft[r], 1e-9);
  }
}

TEST(CorrelateAt, MatchesSweepValue) {
  const auto pattern = m_sequence_pattern(7);
  const auto y = synthetic(pattern, 3000, 50, 0.4, 1.0, 11);
  const auto sweep = correlate_rotations(y, pattern);
  EXPECT_NEAR(correlate_at(y, pattern, 50), sweep[50], 1e-9);
  EXPECT_NEAR(correlate_at(y, pattern, 0), sweep[0], 1e-9);
}

struct SnrCase {
  double amplitude;
  double sigma;
  bool should_detect;
};

class DetectionVsSnr : public ::testing::TestWithParam<SnrCase> {};

TEST_P(DetectionVsSnr, DetectorFollowsSnr) {
  const auto& sc = GetParam();
  const auto pattern = m_sequence_pattern(10);  // P = 1023
  const std::size_t truth = 321;
  const auto y =
      synthetic(pattern, 60000, truth, sc.amplitude, sc.sigma, 13);
  const Detector detector;
  const auto result = detector.detect(y, pattern);
  EXPECT_EQ(result.detected, sc.should_detect)
      << "a=" << sc.amplitude << " sigma=" << sc.sigma << ": "
      << result.reason;
  if (sc.should_detect) {
    EXPECT_EQ(result.spectrum.peak_rotation, truth);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SnrSweep, DetectionVsSnr,
    ::testing::Values(SnrCase{0.5, 1.0, true},    // strong
                      SnrCase{0.1, 1.0, true},    // paper-like rho ~ 0.05
                      SnrCase{0.05, 1.0, true},   // rho ~ 0.025, z ~ 6
                      SnrCase{0.0, 1.0, false},   // no watermark at all
                      SnrCase{0.005, 1.0, false}  // hopeless SNR
                      ));

TEST(SpreadSpectrum, StatsExcludePeakWindow) {
  const auto pattern = m_sequence_pattern(8);
  const auto y = synthetic(pattern, 20000, 77, 0.5, 1.0, 17);
  const auto ss = compute_spread_spectrum(y, pattern);
  EXPECT_EQ(ss.peak_rotation, 77u);
  EXPECT_GT(ss.peak_value, 5.0 * ss.noise_std);
  EXPECT_LT(std::fabs(ss.noise_mean), 3.0 * ss.noise_std);
  EXPECT_GT(ss.isolation(), 1.5);
  EXPECT_GT(ss.peak_z, 5.0);
}

TEST(SpreadSpectrum, NegativePeakDetectedByMagnitude) {
  // An inverted watermark (anti-correlated) still peaks, negatively.
  const auto pattern = m_sequence_pattern(8);
  auto y = synthetic(pattern, 20000, 50, -0.5, 1.0, 19);
  const auto ss = compute_spread_spectrum(y, pattern);
  EXPECT_EQ(ss.peak_rotation, 50u);
  EXPECT_LT(ss.peak_value, 0.0);
  EXPECT_GT(ss.peak_z, 5.0);
}

TEST(SpreadSpectrum, EmptySweep) {
  const auto ss = summarize_sweep({}, 8);
  EXPECT_TRUE(ss.rho.empty());
  EXPECT_EQ(ss.peak_value, 0.0);
}

TEST(Detector, PolicyThresholdsRespected) {
  DetectorPolicy strict;
  strict.min_peak_z = 50.0;  // unreachable
  const auto pattern = m_sequence_pattern(8);
  const auto y = synthetic(pattern, 20000, 40, 0.5, 1.0, 23);
  const Detector detector(strict);
  EXPECT_FALSE(detector.detect(y, pattern).detected);
}

TEST(Detector, ReasonStringExplains) {
  const auto pattern = m_sequence_pattern(8);
  const auto y = synthetic(pattern, 20000, 40, 0.5, 1.0, 29);
  const Detector detector;
  const auto result = detector.detect(y, pattern);
  EXPECT_NE(result.reason.find("DETECTED"), std::string::npos);
  EXPECT_NE(result.reason.find("rotation 40"), std::string::npos);
}

TEST(Detector, NoiseFloorMaxZIsBelowThreshold) {
  // Pure noise across many trials: the detector must stay quiet.
  const auto pattern = m_sequence_pattern(8);
  const Detector detector;
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    const auto y = synthetic(pattern, 20000, 0, 0.0, 1.0, seed);
    EXPECT_FALSE(detector.detect(y, pattern).detected)
        << "false positive at seed " << seed;
  }
}

TEST(Repeatability, CollectsInAndOffPhase) {
  const auto pattern = m_sequence_pattern(8);
  const Detector detector;
  const auto result = run_repeatability(
      20,
      [&](std::size_t rep) {
        const std::size_t truth = (rep * 37) % pattern.size();
        const auto y =
            synthetic(pattern, 20000, truth, 0.5, 1.0, 1000 + rep);
        RepetitionOutcome out;
        out.spectrum = compute_spread_spectrum(y, pattern);
        out.true_rotation = truth;
        out.detected = detector.decide(out.spectrum).detected;
        return out;
      });
  EXPECT_EQ(result.repetitions, 20u);
  EXPECT_EQ(result.detections, 20u);
  // In-phase correlations are clearly separated from the off-phase box.
  EXPECT_GT(result.in_phase.median, 5.0 * result.off_phase.q_high);
  EXPECT_NEAR(result.off_phase.median, 0.0, 0.01);
  EXPECT_EQ(result.samples.size(), 20u);
  for (const auto& s : result.samples) {
    EXPECT_GT(s.in_phase_rho, s.max_off_phase);
  }
}

TEST(Repeatability, InactiveWatermarkNeverDetects) {
  const auto pattern = m_sequence_pattern(8);
  const Detector detector;
  const auto result = run_repeatability(
      10,
      [&](std::size_t rep) {
        const auto y = synthetic(pattern, 20000, 0, 0.0, 1.0, 2000 + rep);
        RepetitionOutcome out;
        out.spectrum = compute_spread_spectrum(y, pattern);
        out.true_rotation = 0;
        out.detected = detector.decide(out.spectrum).detected;
        return out;
      });
  EXPECT_EQ(result.detections, 0u);
  EXPECT_NEAR(result.in_phase.median, 0.0, 0.01);
}

}  // namespace
}  // namespace clockmark::cpa
