#include "dsp/filter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace clockmark::dsp {
namespace {

TEST(OnePoleLowPass, RejectsBadCutoff) {
  EXPECT_THROW(OnePoleLowPass(0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(OnePoleLowPass(60.0, 100.0), std::invalid_argument);
}

TEST(OnePoleLowPass, DcPassesThrough) {
  OnePoleLowPass lp(1000.0, 1e6);
  double y = 0.0;
  for (int i = 0; i < 20000; ++i) y = lp.step(1.0);
  EXPECT_NEAR(y, 1.0, 1e-6);
}

TEST(OnePoleLowPass, AttenuatesHighFrequency) {
  const double fs = 1e6;
  OnePoleLowPass lp(1000.0, fs);
  // 100 kHz square wave: 100x above cutoff, amplitude should collapse.
  double min_out = 1e9, max_out = -1e9;
  for (int i = 0; i < 100000; ++i) {
    const double x = ((i / 5) % 2 == 0) ? 1.0 : -1.0;
    const double y = lp.step(x);
    if (i > 50000) {
      min_out = std::min(min_out, y);
      max_out = std::max(max_out, y);
    }
  }
  EXPECT_LT(max_out - min_out, 0.1);  // >20x attenuation
}

TEST(OnePoleLowPass, ResetPrimesState) {
  OnePoleLowPass lp(1000.0, 1e6);
  lp.reset(5.0);
  // First output stays near the primed level for a DC input of 5.
  EXPECT_NEAR(lp.step(5.0), 5.0, 1e-9);
}

TEST(OnePoleLowPass, MinusThreeDbAtCutoff) {
  const double fs = 1e6;
  const double fc = 10e3;
  OnePoleLowPass lp(fc, fs);
  // Drive with a sinusoid at fc and measure output RMS after settling.
  double sum_sq = 0.0;
  int count = 0;
  for (int i = 0; i < 200000; ++i) {
    const double x =
        std::sin(2.0 * std::numbers::pi * fc * i / fs);
    const double y = lp.step(x);
    if (i > 100000) {
      sum_sq += y * y;
      ++count;
    }
  }
  const double rms = std::sqrt(sum_sq / count);
  // Input RMS is 1/sqrt(2); at cutoff output is ~3 dB below input.
  EXPECT_NEAR(rms / (1.0 / std::sqrt(2.0)), 1.0 / std::sqrt(2.0), 0.05);
}

TEST(Biquad, LowPassDcGainIsUnity) {
  Biquad bq = Biquad::low_pass(10e3, 0.707, 1e6);
  double y = 0.0;
  for (int i = 0; i < 100000; ++i) y = bq.step(1.0);
  EXPECT_NEAR(y, 1.0, 1e-3);
}

TEST(Biquad, PeakingBoostsAtCenter) {
  const double fs = 1e6;
  const double f0 = 50e3;
  Biquad bq = Biquad::peaking(f0, 2.0, 12.0, fs);
  double sum_sq_in = 0.0, sum_sq_out = 0.0;
  for (int i = 0; i < 200000; ++i) {
    const double x = std::sin(2.0 * std::numbers::pi * f0 * i / fs);
    const double y = bq.step(x);
    if (i > 100000) {
      sum_sq_in += x * x;
      sum_sq_out += y * y;
    }
  }
  const double gain_db =
      10.0 * std::log10(sum_sq_out / sum_sq_in);
  EXPECT_NEAR(gain_db, 12.0, 0.5);
}

TEST(Biquad, ResetClearsState) {
  Biquad bq = Biquad::low_pass(10e3, 0.707, 1e6);
  for (int i = 0; i < 100; ++i) bq.step(1.0);
  bq.reset();
  // After reset, an impulse response starts from scratch (first output is
  // just b0 * x).
  Biquad fresh = Biquad::low_pass(10e3, 0.707, 1e6);
  EXPECT_DOUBLE_EQ(bq.step(1.0), fresh.step(1.0));
}

TEST(BlockAverage, ExactBlocks) {
  const std::vector<double> x = {1, 2, 3, 4, 5, 6};
  const auto y = block_average(x, 2);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 1.5);
  EXPECT_DOUBLE_EQ(y[1], 3.5);
  EXPECT_DOUBLE_EQ(y[2], 5.5);
}

TEST(BlockAverage, DropsPartialTail) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const auto y = block_average(x, 2);
  EXPECT_EQ(y.size(), 2u);
}

TEST(BlockAverage, FactorOneIsIdentity) {
  const std::vector<double> x = {1.5, -2.5, 3.5};
  const auto y = block_average(x, 1);
  EXPECT_EQ(y, x);
}

TEST(BlockAverage, ZeroFactorThrows) {
  const std::vector<double> x = {1.0};
  EXPECT_THROW(block_average(x, 0), std::invalid_argument);
}

TEST(BlockAverage, FiftySamplesPerCycleLikeThePaper) {
  // 500 MS/s over a 10 MHz clock: 50 samples per cycle.
  std::vector<double> samples(50 * 10);
  for (std::size_t c = 0; c < 10; ++c) {
    for (std::size_t i = 0; i < 50; ++i) {
      samples[c * 50 + i] = static_cast<double>(c);  // flat per cycle
    }
  }
  const auto y = block_average(samples, 50);
  ASSERT_EQ(y.size(), 10u);
  for (std::size_t c = 0; c < 10; ++c) {
    EXPECT_DOUBLE_EQ(y[c], static_cast<double>(c));
  }
}

}  // namespace
}  // namespace clockmark::dsp
