// The candidate engine (sync/engine.h) must be unobservable from the
// search's point of view: score() bit-identical to the reference
// sync_score, batches bit-identical serial vs parallel, and a reused
// engine (the detection facade's steady state, with its per-length
// caches warm) bit-identical to a throwaway one. Also pinned here: the
// meaning of SyncEstimate::evaluations (total scored candidates) and
// the opt-in progressive-resolution mode (coarse_top_k).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "attack/desync.h"
#include "runtime/executor.h"
#include "sim/scenario.h"
#include "sync/engine.h"
#include "sync/search.h"
#include "sync/types.h"

namespace {

using namespace clockmark;
using sim::ChipModel;
using sim::Scenario;
using sim::ScenarioConfig;

ScenarioConfig fast_config(ChipModel chip, std::size_t cycles = 20000) {
  ScenarioConfig cfg = chip == ChipModel::kChip1 ? sim::chip1_default()
                                                 : sim::chip2_default();
  cfg.trace_cycles = cycles;
  cfg.acquisition.scope.noise_v_rms = 2e-3;
  cfg.acquisition.probe.noise_v_rms = 0.5e-3;
  return cfg;
}

/// Candidate specs spanning every shape the search probes: identity,
/// pure ratio (both directions), ratio + drift, fractional offsets, and
/// a shrink severe enough that the warped trace drops below one period.
std::vector<sync::WarpSpec> probe_specs() {
  std::vector<sync::WarpSpec> specs;
  specs.emplace_back();  // identity
  sync::WarpSpec s;
  s.ratio = 1.0 + 80e-6;
  specs.push_back(s);
  s = {};
  s.ratio = 1.0 - 40e-6;
  s.drift = 2e-9;
  specs.push_back(s);
  s = {};
  s.offset_cycles = 1.0 / 3.0;
  specs.push_back(s);
  s = {};
  s.offset_cycles = -25.4;
  s.ratio = 1.0 + 120e-6;
  specs.push_back(s);
  s = {};
  s.ratio = 6.0;  // warped length ~ n/6 < one period: scores 0.0
  specs.push_back(s);
  return specs;
}

void expect_estimates_equal(const sync::SyncEstimate& a,
                            const sync::SyncEstimate& b) {
  EXPECT_EQ(a.locked, b.locked);
  EXPECT_EQ(a.correction.offset_cycles, b.correction.offset_cycles);
  EXPECT_EQ(a.correction.ratio, b.correction.ratio);
  EXPECT_EQ(a.correction.drift, b.correction.drift);
  EXPECT_EQ(a.peak_rotation, b.peak_rotation);
  EXPECT_EQ(a.peak_z, b.peak_z);
  EXPECT_EQ(a.offset_cycles, b.offset_cycles);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

class SyncEngineChips : public ::testing::TestWithParam<ChipModel> {};

TEST_P(SyncEngineChips, ScoreBitIdenticalToSyncScore) {
  const Scenario sc(fast_config(GetParam()));
  const auto r = sc.run(0);
  const auto& y = r.acquisition.per_cycle_power_w;
  const sync::CandidateEngine engine(r.pattern);
  const std::size_t guard = sync::BlindSyncConfig{}.guard;

  for (const sync::WarpSpec& spec : probe_specs()) {
    EXPECT_EQ(engine.score(y, spec, guard),
              sync::sync_score(y, r.pattern, spec, guard))
        << "ratio=" << spec.ratio << " drift=" << spec.drift
        << " offset=" << spec.offset_cycles;
  }
}

INSTANTIATE_TEST_SUITE_P(Chips, SyncEngineChips,
                         ::testing::Values(ChipModel::kChip1,
                                           ChipModel::kChip2));

TEST(SyncEngine, ScoreBatchParallelBitIdenticalToSerial) {
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);
  const auto& y = r.acquisition.per_cycle_power_w;
  const sync::CandidateEngine engine(r.pattern);
  const std::vector<sync::WarpSpec> specs = probe_specs();
  const std::size_t guard = sync::BlindSyncConfig{}.guard;

  const std::vector<double> serial =
      engine.score_batch(y, specs, guard, nullptr);
  runtime::Executor executor(4);
  const std::vector<double> parallel =
      engine.score_batch(y, specs, guard, &executor);
  ASSERT_EQ(serial.size(), specs.size());
  EXPECT_EQ(parallel, serial);  // bit-identical, element by element
}

TEST(SyncEngine, ReusedEngineBitIdenticalToThrowawaySearch) {
  // A facade-style engine locks two different attacked traces back to
  // back (the second search runs entirely against warm per-length
  // caches) and must reproduce the pattern-span entry point exactly.
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);
  const auto& y = r.acquisition.per_cycle_power_w;
  const sync::CandidateEngine engine(r.pattern);

  attack::DesyncAttack offset;
  offset.kind = attack::DesyncKind::kFixedOffset;
  offset.offset_cycles = 25.4;
  attack::DesyncAttack drift;
  drift.kind = attack::DesyncKind::kDrift;
  drift.ratio = 1.0 + 60e-6;
  drift.drift = 2e-9;

  for (const auto& a : {offset, drift}) {
    const std::vector<double> attacked = attack::apply_desync(y, a);
    const sync::SyncEstimate reused = sync::find_sync(engine, attacked);
    const sync::SyncEstimate fresh = sync::find_sync(attacked, r.pattern);
    expect_estimates_equal(reused, fresh);
    EXPECT_TRUE(reused.locked);
  }
}

TEST(SyncEngine, EmptyPatternThrows) {
  EXPECT_THROW(sync::CandidateEngine(std::vector<double>{}),
               std::invalid_argument);
}

TEST(BlindSync, EvaluationsCountEveryScoredCandidate) {
  // evaluations = total candidates scored, accepted or not (pinned
  // semantics, sync/types.h). Under the default config the count is a
  // closed form: 17 coarse lattice points (window = 20000 cycles →
  // step 2.5e-5, half_points = ceil(200e-6 / 2.5e-5) = 8), then 2
  // descent rounds of 9-point grids — round 0: 3x9 ratio + 9 drift
  // coarse + 3x9 drift refine = 63, round 1: 3x9 + 3x9 = 54 — and the
  // fractional stage's 3 probes plus the parabola-vertex check probe:
  // 17 + 117 + 3 + 1 = 138.
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);
  attack::DesyncAttack a;
  a.kind = attack::DesyncKind::kFixedOffset;
  a.offset_cycles = 25.4;
  const std::vector<double> attacked =
      attack::apply_desync(r.acquisition.per_cycle_power_w, a);

  const sync::SyncEstimate est = sync::find_sync(attacked, r.pattern);
  EXPECT_TRUE(est.locked);
  // The vertex probe fired (a fixed fractional shift of 0.4 cycles is
  // exactly what stage 4 recovers), so the count includes it.
  EXPECT_NE(est.correction.offset_cycles, 0.0);
  EXPECT_EQ(est.evaluations, 138u);
}

TEST(BlindSync, CoarseTopKOffOrFullWindowIsExactlyHistorical) {
  // coarse_top_k only changes anything when the coarse window is a
  // strict prefix of the trace; with the default full-trace window the
  // knob must be a no-op bit for bit.
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);
  attack::DesyncAttack a;
  a.kind = attack::DesyncKind::kResample;
  a.ratio = 1.0 + 80e-6;
  const std::vector<double> attacked =
      attack::apply_desync(r.acquisition.per_cycle_power_w, a);

  sync::BlindSyncConfig with_knob;
  with_knob.coarse_top_k = 4;
  expect_estimates_equal(sync::find_sync(attacked, r.pattern, with_knob),
                         sync::find_sync(attacked, r.pattern));
}

TEST(BlindSync, PrunedCoarseStageStillLocks) {
  // Progressive resolution on a genuinely truncated window: rank the
  // lattice on the first 8192 cycles, rescore only the top 4 on the
  // full trace. The lock must survive and land on the same peak
  // rotation as the exact search with the same window.
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto r = sc.run(0);
  attack::DesyncAttack a;
  a.kind = attack::DesyncKind::kResample;
  a.ratio = 1.0 + 80e-6;
  const std::vector<double> attacked =
      attack::apply_desync(r.acquisition.per_cycle_power_w, a);

  sync::BlindSyncConfig exact;
  exact.coarse_window_cycles = 8192;
  sync::BlindSyncConfig pruned = exact;
  pruned.coarse_top_k = 4;

  const sync::SyncEstimate e = sync::find_sync(attacked, r.pattern, exact);
  const sync::SyncEstimate p = sync::find_sync(attacked, r.pattern, pruned);
  EXPECT_TRUE(e.locked);
  EXPECT_TRUE(p.locked);
  EXPECT_EQ(p.peak_rotation, e.peak_rotation);
  EXPECT_GE(p.peak_z, 0.9 * e.peak_z);
}

}  // namespace
