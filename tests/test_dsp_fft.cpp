#include "dsp/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace clockmark::dsp {
namespace {

TEST(FftHelpers, PowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(4095));
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(5), 8u);
  EXPECT_EQ(next_power_of_two(4096), 4096u);
  EXPECT_EQ(next_power_of_two(4097), 8192u);
}

TEST(FftPow2, RejectsNonPowerOfTwo) {
  std::vector<cplx> data(6);
  EXPECT_THROW(fft_pow2(data, false), std::invalid_argument);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<cplx> x(16, cplx(0, 0));
  x[0] = cplx(1, 0);
  const auto spec = fft(x);
  for (const auto& v : spec) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, DcGivesSingleBin) {
  std::vector<cplx> x(32, cplx(1, 0));
  const auto spec = fft(x);
  EXPECT_NEAR(spec[0].real(), 32.0, 1e-9);
  for (std::size_t k = 1; k < spec.size(); ++k) {
    EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-9);
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, IfftInvertsFft) {
  const std::size_t n = GetParam();
  util::Pcg32 rng(n);
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx(rng.gaussian(), rng.gaussian());
  const auto back = ifft(fft(x));
  ASSERT_EQ(back.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i].real(), x[i].real(), 1e-9);
    EXPECT_NEAR(back[i].imag(), x[i].imag(), 1e-9);
  }
}

// Mix of power-of-two sizes (radix-2 path) and awkward sizes including the
// watermark period 4095 (Bluestein path).
INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 64, 256, 3, 5, 7, 12,
                                           100, 127, 1000, 4095));

TEST(Fft, BluesteinMatchesDirectDft) {
  // Exactness of the arbitrary-N path against the O(n^2) definition.
  for (const std::size_t n : {5u, 12u, 63u, 130u}) {
    util::Pcg32 rng(n);
    std::vector<cplx> x(n);
    for (auto& v : x) v = cplx(rng.gaussian(), rng.gaussian());
    const auto fast = fft(x);
    for (std::size_t k = 0; k < n; ++k) {
      cplx direct(0.0, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        const double angle = -2.0 * std::numbers::pi *
                             static_cast<double>(k * i) /
                             static_cast<double>(n);
        direct += x[i] * cplx(std::cos(angle), std::sin(angle));
      }
      EXPECT_NEAR(fast[k].real(), direct.real(), 1e-8)
          << "n=" << n << " k=" << k;
      EXPECT_NEAR(fast[k].imag(), direct.imag(), 1e-8);
    }
  }
}

TEST(Fft, SinusoidLandsInCorrectBin) {
  const std::size_t n = 128;
  const std::size_t k0 = 5;
  std::vector<cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * std::numbers::pi * k0 * i / n;
    x[i] = cplx(std::cos(phase), 0.0);
  }
  const auto spec = fft(x);
  // Real cosine: energy in bins k0 and n - k0.
  EXPECT_NEAR(std::abs(spec[k0]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(spec[n - k0]), n / 2.0, 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != k0 && k != n - k0) {
      EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-8);
    }
  }
}

TEST(Fft, ParsevalHolds) {
  util::Pcg32 rng(77);
  const std::size_t n = 300;  // non power of two
  std::vector<cplx> x(n);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = cplx(rng.gaussian(), 0.0);
    time_energy += std::norm(v);
  }
  const auto spec = fft(x);
  double freq_energy = 0.0;
  for (const auto& v : spec) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-6);
}

TEST(PowerSpectrum, HalfSpectrumLength) {
  std::vector<double> x(64, 1.0);
  const auto p = power_spectrum(x);
  EXPECT_EQ(p.size(), 33u);
  EXPECT_NEAR(p[0], 64.0 * 64.0, 1e-6);
}

class CircCorr : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CircCorr, FftMatchesDirect) {
  const std::size_t n = GetParam();
  util::Pcg32 rng(n * 31 + 1);
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.gaussian();
    b[i] = rng.gaussian();
  }
  const auto fast = circular_cross_correlation(a, b);
  const auto slow = circular_cross_correlation_direct(a, b);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-7 * static_cast<double>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CircCorr,
                         ::testing::Values(1, 2, 3, 8, 31, 63, 100, 255,
                                           511, 1023));

TEST(CircCorr, ShiftRecovery) {
  // Correlating a sequence against a rotated copy peaks at the rotation.
  const std::size_t n = 128;
  util::Pcg32 rng(5);
  std::vector<double> a(n);
  for (auto& v : a) v = rng.gaussian();
  const std::size_t shift = 37;
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = a[(i + shift) % n];
  // r[k] = sum a[i] * a[(i + k + shift) % n]; peak where k + shift = 0 mod n.
  const auto r = circular_cross_correlation(b, a);
  std::size_t best = 0;
  for (std::size_t k = 1; k < n; ++k) {
    if (r[k] > r[best]) best = k;
  }
  EXPECT_EQ(best, shift);
}

TEST(CircCorr, MismatchedLengthsThrow) {
  std::vector<double> a(4), b(5);
  EXPECT_THROW(circular_cross_correlation(a, b), std::invalid_argument);
  EXPECT_THROW(circular_cross_correlation_direct(a, b),
               std::invalid_argument);
}

}  // namespace
}  // namespace clockmark::dsp
