// The socdesc frontend end to end: strict parsing (positive and
// negative), render/parse round-trips, deterministic generation, the
// multi-domain rule catalog on both hand-built designs and generated
// corpora, and the compile_scenario bridge into detect::Session.
#include <cstddef>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "detect/session.h"
#include "lint/analyzer.h"
#include "lint/design.h"
#include "lint/report.h"
#include "lint/rule.h"
#include "measure/acquisition.h"
#include "power/tech65.h"
#include "rtl/netlist.h"
#include "sim/scenario.h"
#include "socdesc/compile.h"
#include "socdesc/elaborate.h"
#include "socdesc/generator.h"
#include "socdesc/parser.h"

namespace clockmark {
namespace {

using socdesc::ClockController;
using socdesc::DefectKind;
using socdesc::SocDescription;
using socdesc::SocError;

// The showcase description (mirrors examples/socs/multi_domain.yaml):
// four domains on two inputs, one divided, one muxed, one watermarked
// behind a bypass-hardened ICG.
const char kShowcase[] = R"(# Multi-domain demo SoC clock controller.
clock:
  - name: demo_soc
    test_enable: test_en
    input:
      clk_sys:
        freq: 48MHz
      clk_aux:
        freq: 12MHz
    target:
      cpu:
        freq: 48MHz
        sinks: 1024   # paper Fig. 4(a): 32 words x 32 bits
        link:
          clk_sys:
        icg:
          enable: cpu_en
          test_bypass: false   # keep the watermark off the DFT bypass
        watermark:
          mode: lfsr
          width: 10
          seed: 0x2a
      bus:
        freq: 24MHz
        sinks: 32
        link:
          clk_sys:
            div:
              default: 2
              reset: rst_n
        icg:
          enable: bus_en
      uart:
        freq: 12MHz
        sinks: 16
        link:
          clk_sys:
          clk_aux:
        mux:
          select: uart_sel
          reset: rst_n
        div:
          default: 4
      dsp:
        freq: 12MHz
        sinks: 48
        link:
          clk_aux:
        icg:
          enable: dsp_en
    measure:
      clock: clk_sys
      trace: 300000
)";

const lint::RuleRegistry& registry() {
  static const lint::RuleRegistry kRegistry = lint::builtin_rules();
  return kRegistry;
}

lint::LintReport lint_design(const lint::Design& design) {
  return lint::Analyzer(registry()).run(design);
}

std::string render_text(const lint::LintReport& report) {
  std::ostringstream os;
  lint::TextReporter().write(report, os);
  return os.str();
}

std::vector<lint::Diagnostic> run_rule(const std::string& id,
                                       const lint::Design& design) {
  const lint::Rule* rule = registry().find(id);
  EXPECT_NE(rule, nullptr) << "unknown rule " << id;
  std::vector<lint::Diagnostic> out;
  if (rule != nullptr) rule->run(design, out);
  return out;
}

bool has_error(const std::vector<lint::Diagnostic>& diags,
               const std::string& rule) {
  for (const lint::Diagnostic& d : diags) {
    if (d.rule == rule && d.severity == lint::Severity::kError) return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// Parser

TEST(SocDescParser, ParsesTheShowcase) {
  const SocDescription soc = socdesc::parse_description(kShowcase);
  ASSERT_EQ(soc.controllers.size(), 1u);
  const ClockController& ctrl = soc.controllers.front();
  EXPECT_EQ(ctrl.name, "demo_soc");
  EXPECT_EQ(ctrl.test_enable, "test_en");
  ASSERT_EQ(ctrl.inputs.size(), 2u);
  EXPECT_DOUBLE_EQ(ctrl.inputs[0].freq_hz, 48e6);
  EXPECT_DOUBLE_EQ(ctrl.inputs[1].freq_hz, 12e6);
  ASSERT_EQ(ctrl.targets.size(), 4u);

  const socdesc::TargetSpec* cpu = ctrl.find_target("cpu");
  ASSERT_NE(cpu, nullptr);
  EXPECT_EQ(cpu->sinks, 1024u);
  ASSERT_TRUE(cpu->icg);
  EXPECT_EQ(cpu->icg->enable, "cpu_en");
  EXPECT_FALSE(cpu->icg->test_bypass);
  ASSERT_TRUE(cpu->watermark);
  EXPECT_EQ(cpu->watermark->wgc.width, 10u);
  EXPECT_EQ(cpu->watermark->wgc.seed, 0x2au);  // hex literal accepted

  const socdesc::TargetSpec* bus = ctrl.find_target("bus");
  ASSERT_NE(bus, nullptr);
  ASSERT_EQ(bus->links.size(), 1u);
  ASSERT_TRUE(bus->links[0].div);
  EXPECT_EQ(bus->links[0].div->ratio, 2u);
  EXPECT_EQ(bus->links[0].div->reset, "rst_n");
  EXPECT_EQ(socdesc::total_division(*bus), 2u);

  const socdesc::TargetSpec* uart = ctrl.find_target("uart");
  ASSERT_NE(uart, nullptr);
  ASSERT_EQ(uart->links.size(), 2u);
  ASSERT_TRUE(uart->mux);
  EXPECT_EQ(uart->mux->select, "uart_sel");
  EXPECT_EQ(uart->mux->reset, "rst_n");
  ASSERT_TRUE(uart->div);
  EXPECT_EQ(uart->div->ratio, 4u);
  EXPECT_DOUBLE_EQ(socdesc::effective_frequency(ctrl, *uart), 12e6);

  EXPECT_EQ(ctrl.measure.clock, "clk_sys");
  EXPECT_EQ(ctrl.measure.trace_cycles, 300000u);
}

TEST(SocDescParser, RejectsMalformedDescriptions) {
  const struct {
    const char* text;
    const char* needle;
  } kCases[] = {
      {"", "empty description"},
      {"clock:\n\t- name: x\n", "tab character"},
      {"  clock:\n", "column 0"},
      {"clock:\n  - name: a\n   input:\n", "inconsistent indentation"},
      {"clock:\n  - name: a\n    name: b\n", "duplicate key"},
      {"clock2:\n  x: 1\n", "no 'clock:' section"},
      {"clock:\n  - name: a\n    bogus: 1\n", "unknown key"},
      {"power:\n  x: 1\n", "no 'clock:' section"},
      {"clock:\n", "lists no controllers"},
      {"clock:\n  - input:\n      c:\n        freq: 1MHz\n", "needs a"},
      {"clock:\n  - name: a\n    input:\n      c:\n        freq: 0MHz\n",
       "not positive"},
      {"clock:\n  - name: a\n    input:\n      c:\n        freq: 1parsec\n",
       "unknown frequency unit"},
      {"clock:\n  - name: a\n    input:\n      c:\n        freq: 1MHz\n"
       "    target:\n      t:\n        freq: 1MHz\n",
       "needs a 'link:' block"},
      {"clock:\n  - name: a\n    input:\n      c:\n        freq: 1MHz\n"
       "    target:\n      t:\n        link:\n          c:\n",
       "needs a declared 'freq:'"},
      {"clock:\n  - name: a\n    input:\n      c:\n        freq: 1MHz\n"
       "    target:\n      t:\n        freq: 1MHz\n        link:\n"
       "          c:\n        mux:\n          reset: r\n",
       "links only one input"},
      {"clock:\n  - name: a\n    input:\n      c:\n        freq: 4MHz\n"
       "    target:\n      t:\n        freq: 4MHz\n        link:\n"
       "          c:\n            div:\n              default: 1\n",
       "division ratio must be in [2, 4096]"},
      {"clock:\n  - name: a\n    input:\n      c:\n        freq: 4MHz\n"
       "    target:\n      t:\n        freq: 4MHz\n        link:\n"
       "          c:\n        icg:\n          test_bypass: false\n",
       "needs an 'enable:'"},
      {"clock:\n  - name: a\n    input:\n      c:\n        freq: 4MHz\n"
       "    target:\n      t:\n        freq: 4MHz\n        link:\n"
       "          c:\n        inv: yes\n",
       "expected true/false"},
      {"clock:\n  - name: a\n    input:\n      c:\n        freq: 4MHz\n"
       "    target:\n      t:\n        freq: 4MHz\n        link:\n"
       "          c:\n        sinks: 1x\n",
       "bad number"},
      {"clock:\n  - name: a\n    input:\n      c:\n        freq: 4MHz\n"
       "    target:\n      t:\n        freq: 4MHz scalar\n          x: 1\n",
       "cannot have a nested block"},
      {"clock:\n  - name: a\n    input:\n      c:\n        freq: 4MHz\n"
       "    target:\n      t:\n        freq: 4MHz\n        link:\n"
       "          c:\n  - name: a\n    input:\n      c:\n"
       "        freq: 4MHz\n    target:\n      t:\n        freq: 4MHz\n"
       "        link:\n          c:\n",
       "duplicate controller name"},
  };
  for (const auto& c : kCases) {
    try {
      socdesc::parse_description(c.text);
      FAIL() << "accepted: " << c.text;
    } catch (const SocError& e) {
      EXPECT_NE(std::string(e.what()).find(c.needle), std::string::npos)
          << "for input <" << c.text << "> got: " << e.what();
    }
  }
}

TEST(SocDescParser, ReportsLineNumbers) {
  try {
    socdesc::parse_description("clock:\n  - name: a\n    bogus: 1\n");
    FAIL();
  } catch (const SocError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(SocDescFrequency, ParsesAndFormats) {
  EXPECT_DOUBLE_EQ(socdesc::parse_frequency("10MHz"), 10e6);
  EXPECT_DOUBLE_EQ(socdesc::parse_frequency("32.768kHz"), 32768.0);
  EXPECT_DOUBLE_EQ(socdesc::parse_frequency("1GHz"), 1e9);
  EXPECT_DOUBLE_EQ(socdesc::parse_frequency("250"), 250.0);
  EXPECT_DOUBLE_EQ(socdesc::parse_frequency("250Hz"), 250.0);
  EXPECT_THROW(socdesc::parse_frequency("fast"), SocError);
  EXPECT_THROW(socdesc::parse_frequency("-1MHz"), SocError);

  EXPECT_EQ(socdesc::format_frequency(48e6), "48MHz");
  EXPECT_EQ(socdesc::format_frequency(3.125e6), "3.125MHz");
  EXPECT_EQ(socdesc::format_frequency(32768.0), "32.768kHz");
  EXPECT_EQ(socdesc::format_frequency(250.0), "250Hz");
  for (const double hz : {48e6, 12.5e6, 750e3, 390.625e3, 1e9}) {
    EXPECT_DOUBLE_EQ(socdesc::parse_frequency(socdesc::format_frequency(hz)),
                     hz);
  }
}

// ---------------------------------------------------------------------
// Renderer and generator

TEST(SocDescRender, RoundTripsTheShowcase) {
  const SocDescription parsed = socdesc::parse_description(kShowcase);
  const std::string rendered = socdesc::render_description(parsed);
  const SocDescription reparsed = socdesc::parse_description(rendered);
  // Render is canonical: a second round-trip is a fixed point.
  EXPECT_EQ(socdesc::render_description(reparsed), rendered);
  ASSERT_EQ(reparsed.controllers.size(), 1u);
  const ClockController& ctrl = reparsed.controllers.front();
  EXPECT_EQ(ctrl.name, "demo_soc");
  ASSERT_EQ(ctrl.targets.size(), 4u);
  ASSERT_TRUE(ctrl.targets[0].watermark);
  EXPECT_EQ(ctrl.targets[0].watermark->wgc.seed, 0x2au);
  EXPECT_EQ(ctrl.measure.trace_cycles, 300000u);
}

TEST(SocDescGenerator, ByteIdenticalPerSeed) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234567ull}) {
    socdesc::GeneratorOptions options;
    options.seed = seed;
    EXPECT_EQ(socdesc::generate_description(options),
              socdesc::generate_description(options))
        << "seed " << seed;
  }
  socdesc::GeneratorOptions a;
  a.seed = 1;
  socdesc::GeneratorOptions b;
  b.seed = 2;
  EXPECT_NE(socdesc::generate_description(a),
            socdesc::generate_description(b));
}

TEST(SocDescGenerator, GeneratedTextRoundTrips) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    socdesc::GeneratorOptions options;
    options.seed = seed;
    const std::string text = socdesc::generate_description(options);
    const SocDescription parsed = socdesc::parse_description(text);
    EXPECT_EQ(socdesc::render_description(parsed), text) << "seed " << seed;
    ASSERT_GE(parsed.controllers.front().targets.size(), 3u);
  }
}

TEST(SocDescGenerator, DefectKindNamesRoundTrip) {
  EXPECT_EQ(socdesc::parse_defect_kind("none"), DefectKind::kNone);
  EXPECT_EQ(socdesc::parse_defect_kind("aliased-domain"),
            DefectKind::kAliasedDomain);
  EXPECT_EQ(socdesc::parse_defect_kind("test-bypass"),
            DefectKind::kTestBypass);
  EXPECT_EQ(socdesc::parse_defect_kind("glitch-mux"), DefectKind::kGlitchMux);
  EXPECT_EQ(socdesc::parse_defect_kind("key-collision"),
            DefectKind::kKeyCollision);
  EXPECT_THROW(socdesc::parse_defect_kind("meltdown"), SocError);
  EXPECT_EQ(socdesc::defect_rule_id(DefectKind::kNone), "");
  EXPECT_EQ(socdesc::defect_rule_id(DefectKind::kTestBypass),
            "test-bypassable-watermark");
}

// ---------------------------------------------------------------------
// Elaboration

TEST(SocDescElaborate, LowersTheShowcase) {
  const SocDescription soc = socdesc::parse_description(kShowcase);
  const socdesc::ElaboratedSoc elaborated =
      socdesc::elaborate(soc.controllers.front());
  EXPECT_EQ(elaborated.reference_input, "clk_sys");
  EXPECT_DOUBLE_EQ(elaborated.reference_hz, 48e6);
  ASSERT_EQ(elaborated.design.clock_domains().size(), 4u);

  const lint::ClockDomainView& cpu = elaborated.design.clock_domains()[0];
  EXPECT_EQ(cpu.target, "cpu");
  EXPECT_DOUBLE_EQ(cpu.clock_hz, 48e6);
  EXPECT_FALSE(cpu.test_bypassable);  // test_bypass: false opts out
  const lint::ClockDomainView& bus = elaborated.design.clock_domains()[1];
  EXPECT_EQ(bus.division, 2u);
  EXPECT_TRUE(bus.test_bypassable);  // default bypass + test_enable
  const lint::ClockDomainView& uart = elaborated.design.clock_domains()[2];
  EXPECT_EQ(uart.mux_sources, 2u);
  EXPECT_FALSE(uart.mux_glitch_prone);  // mux has a reset

  ASSERT_EQ(elaborated.design.watermarks().size(), 1u);
  const lint::WatermarkView& wm = elaborated.design.watermarks()[0];
  EXPECT_EQ(wm.name, "cpu");
  ASSERT_TRUE(wm.domain);
  EXPECT_EQ(*wm.domain, 0u);

  ASSERT_EQ(elaborated.power.domains.size(), 4u);
  EXPECT_TRUE(elaborated.power.domains[0].watermarked);
  EXPECT_GT(elaborated.power.domains[0].modulated_w, 0.0);
  EXPECT_GT(elaborated.power.total_w, elaborated.power.background_w);
  EXPECT_GT(elaborated.power.background_w, 0.0);

  ASSERT_TRUE(elaborated.design.acquisition());
  EXPECT_DOUBLE_EQ(elaborated.design.acquisition()->scope.sample_rate_hz,
                   50.0 * 48e6);
  ASSERT_TRUE(elaborated.design.tech());
  EXPECT_DOUBLE_EQ(elaborated.design.tech()->clock_hz, 48e6);
}

TEST(SocDescElaborate, ShowcaseLintsClean) {
  const SocDescription soc = socdesc::parse_description(kShowcase);
  const lint::LintReport report =
      lint_design(socdesc::elaborate(soc.controllers.front()).design);
  EXPECT_TRUE(report.clean()) << render_text(report);
  EXPECT_EQ(report.counts.warnings, 0u) << render_text(report);
}

TEST(SocDescElaborate, RejectsInconsistentFrequency) {
  SocDescription soc = socdesc::parse_description(kShowcase);
  soc.controllers.front().targets[1].freq_hz = 40e6;  // chain says 24 MHz
  EXPECT_THROW(socdesc::elaborate(soc.controllers.front()), SocError);
}

TEST(SocDescElaborate, RejectsUnknownLinkInput) {
  SocDescription soc = socdesc::parse_description(kShowcase);
  soc.controllers.front().targets[0].links[0].input = "clk_ghost";
  EXPECT_THROW(socdesc::elaborate(soc.controllers.front()), SocError);
}

TEST(SocDescElaborate, UnwatermarkedIcgSurvivesRemovableWatermarkRule) {
  // A watermark without an ICG is the classic removable architecture:
  // the structural rule (not the frontend) must report it.
  SocDescription soc = socdesc::parse_description(kShowcase);
  ClockController& ctrl = soc.controllers.front();
  ctrl.targets[0].icg.reset();
  const socdesc::ElaboratedSoc elaborated = socdesc::elaborate(ctrl);
  const lint::LintReport report = lint_design(elaborated.design);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_error(report.diagnostics, "removable-watermark"))
      << render_text(report);
}

// ---------------------------------------------------------------------
// Multi-domain rules on hand-built designs (fixtures independent of the
// elaborator, so rule and lowering bugs cannot mask each other).

struct DomainFixture {
  lint::ClockDomainView domain;
  wgc::WgcConfig key;
  bool watermarked = true;
};

lint::Design domain_design(const std::vector<DomainFixture>& fixtures,
                           double reference_hz, double scope_rate_hz,
                           std::size_t trace_cycles) {
  auto netlist = std::make_shared<rtl::Netlist>();
  const rtl::NetId clk = netlist->add_net("clk");
  lint::Design design("unit", netlist, clk);
  for (const DomainFixture& fx : fixtures) {
    const std::size_t index = design.add_clock_domain(fx.domain);
    if (!fx.watermarked) continue;
    lint::WatermarkView view;
    view.name = fx.domain.target;
    view.module_path = fx.domain.target;
    view.wgc = fx.key;
    view.domain = index;
    design.add_watermark(std::move(view));
  }
  power::TechLibrary tech;
  design.set_tech(tech.at_operating_point(reference_hz, tech.vdd_v));
  if (scope_rate_hz > 0.0) {
    measure::AcquisitionConfig acq;
    acq.scope.sample_rate_hz = scope_rate_hz;
    design.set_acquisition(acq);
  }
  design.set_trace_cycles(trace_cycles);
  return design;
}

DomainFixture fixture(const std::string& name, double clock_hz,
                      unsigned division, unsigned width,
                      std::uint32_t seed) {
  DomainFixture fx;
  fx.domain.target = name;
  fx.domain.source = "clk_sys";
  fx.domain.clock_hz = clock_hz;
  fx.domain.division = division;
  fx.domain.sinks = 32;
  fx.key.mode = wgc::WgcMode::kLfsr;
  fx.key.width = width;
  fx.key.taps = 0;
  fx.key.seed = seed;
  return fx;
}

TEST(DomainAliasingRule, FiresBelowDomainNyquist) {
  const auto design = domain_design({fixture("a", 24e6, 2, 7, 5)}, 48e6,
                                    40e6, 300000);
  EXPECT_TRUE(has_error(run_rule("domain-aliasing", design),
                        "domain-aliasing"));
}

TEST(DomainAliasingRule, FiresAboveTheReference) {
  const auto design = domain_design({fixture("a", 96e6, 1, 7, 5)}, 48e6,
                                    2.4e9, 300000);
  EXPECT_TRUE(has_error(run_rule("domain-aliasing", design),
                        "domain-aliasing"));
}

TEST(DomainAliasingRule, ChecksTheStretchedPeriod) {
  // /64 domain: a width-7 period stretches to 127 * 64 = 8128 reference
  // cycles. Below one period: error; below four: warning; above: quiet.
  const auto short_trace =
      domain_design({fixture("a", 750e3, 64, 7, 5)}, 48e6, 2.4e9, 5000);
  EXPECT_TRUE(has_error(run_rule("domain-aliasing", short_trace),
                        "domain-aliasing"));

  const auto marginal =
      domain_design({fixture("a", 750e3, 64, 7, 5)}, 48e6, 2.4e9, 20000);
  const auto warn = run_rule("domain-aliasing", marginal);
  ASSERT_EQ(warn.size(), 1u);
  EXPECT_EQ(warn[0].severity, lint::Severity::kWarning);

  const auto covered =
      domain_design({fixture("a", 750e3, 64, 7, 5)}, 48e6, 2.4e9, 40000);
  EXPECT_TRUE(run_rule("domain-aliasing", covered).empty());
}

TEST(DomainAliasingRule, CleanDomainPasses) {
  const auto design = domain_design({fixture("a", 24e6, 2, 7, 5)}, 48e6,
                                    2.4e9, 300000);
  EXPECT_TRUE(run_rule("domain-aliasing", design).empty());
}

TEST(TestBypassableWatermarkRule, FiresOnlyOnBypassableWatermarkedDomains) {
  DomainFixture bad = fixture("a", 48e6, 1, 7, 5);
  bad.domain.test_bypassable = true;
  EXPECT_TRUE(has_error(
      run_rule("test-bypassable-watermark",
               domain_design({bad}, 48e6, 2.4e9, 300000)),
      "test-bypassable-watermark"));

  DomainFixture hardened = fixture("a", 48e6, 1, 7, 5);
  hardened.domain.test_bypassable = false;
  EXPECT_TRUE(run_rule("test-bypassable-watermark",
                       domain_design({hardened}, 48e6, 2.4e9, 300000))
                  .empty());

  DomainFixture unwatermarked = fixture("a", 48e6, 1, 7, 5);
  unwatermarked.domain.test_bypassable = true;
  unwatermarked.watermarked = false;
  EXPECT_TRUE(run_rule("test-bypassable-watermark",
                       domain_design({unwatermarked}, 48e6, 2.4e9, 300000))
                  .empty());
}

TEST(GlitchProneMuxRule, WarnsPlainMuxAndErrorsWhenWatermarked) {
  DomainFixture plain = fixture("a", 48e6, 1, 7, 5);
  plain.domain.mux_glitch_prone = true;
  plain.domain.mux_sources = 2;
  plain.watermarked = false;
  const auto warn = run_rule(
      "glitch-prone-mux", domain_design({plain}, 48e6, 2.4e9, 300000));
  ASSERT_EQ(warn.size(), 1u);
  EXPECT_EQ(warn[0].severity, lint::Severity::kWarning);

  plain.watermarked = true;
  EXPECT_TRUE(has_error(
      run_rule("glitch-prone-mux",
               domain_design({plain}, 48e6, 2.4e9, 300000)),
      "glitch-prone-mux"));

  DomainFixture glitch_free = fixture("a", 48e6, 1, 7, 5);
  glitch_free.domain.mux_sources = 2;  // reset present -> not glitch-prone
  EXPECT_TRUE(run_rule("glitch-prone-mux",
                       domain_design({glitch_free}, 48e6, 2.4e9, 300000))
                  .empty());
}

TEST(CrossDomainCollisionRule, IdenticalKeyAtIdenticalRateIsAnError) {
  const auto design =
      domain_design({fixture("a", 24e6, 2, 7, 5), fixture("b", 24e6, 2, 7, 5)},
                    48e6, 2.4e9, 300000);
  EXPECT_TRUE(has_error(run_rule("cross-domain-collision", design),
                        "cross-domain-collision"));
}

TEST(CrossDomainCollisionRule, DistinctKeysSeparate) {
  const auto design = domain_design(
      {fixture("a", 48e6, 1, 5, 9), fixture("b", 48e6, 1, 7, 5)}, 48e6,
      2.4e9, 300000);
  const auto diags = run_rule("cross-domain-collision", design);
  ASSERT_EQ(diags.size(), 1u);  // measured separation is reported
  EXPECT_NE(diags[0].severity, lint::Severity::kError) << diags[0].message;
}

TEST(CrossDomainCollisionRule, LongCommonPeriodsAreDeferredToTheBench) {
  const auto design = domain_design(
      {fixture("a", 48e6, 1, 10, 9), fixture("b", 24e6, 2, 11, 5)}, 48e6,
      2.4e9, 300000);
  const auto diags = run_rule("cross-domain-collision", design);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, lint::Severity::kInfo);
}

TEST(MultiDomainRules, StayQuietWithoutDomainMetadata) {
  // The chip presets never populate ClockDomainView: every multi-domain
  // rule must pass through untouched (DESIGN.md section 9 invariant).
  const lint::Design preset =
      lint::design_from_scenario_config("chip2", sim::chip2_default());
  for (const char* id :
       {"domain-aliasing", "test-bypassable-watermark", "glitch-prone-mux",
        "cross-domain-collision"}) {
    EXPECT_TRUE(run_rule(id, preset).empty()) << id;
  }
}

// ---------------------------------------------------------------------
// Generated corpus

TEST(SocDescCorpus, CleanCorpusLintsCleanDeterministically) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    socdesc::GeneratorOptions options;
    options.seed = seed;
    const std::string text = socdesc::generate_description(options);
    const SocDescription soc = socdesc::parse_description(text);
    const socdesc::ElaboratedSoc elaborated =
        socdesc::elaborate(soc.controllers.front());
    const lint::LintReport report = lint_design(elaborated.design);
    EXPECT_TRUE(report.clean())
        << "seed " << seed << "\n" << render_text(report);
    EXPECT_EQ(report.counts.warnings, 0u)
        << "seed " << seed << "\n" << render_text(report);
  }
}

TEST(SocDescCorpus, DefectsTripTheirRule) {
  for (const DefectKind defect :
       {DefectKind::kAliasedDomain, DefectKind::kTestBypass,
        DefectKind::kGlitchMux, DefectKind::kKeyCollision}) {
    const std::string rule(socdesc::defect_rule_id(defect));
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      socdesc::GeneratorOptions options;
      options.seed = seed;
      options.defect = defect;
      const SocDescription soc =
          socdesc::parse_description(socdesc::generate_description(options));
      const lint::LintReport report =
          lint_design(socdesc::elaborate(soc.controllers.front()).design);
      EXPECT_TRUE(has_error(report.diagnostics, rule))
          << rule << " seed " << seed << "\n" << render_text(report);
    }
  }
}

// ---------------------------------------------------------------------
// compile_scenario -> detect::Session

TEST(SocDescCompile, EndToEndDetectionOnTheShowcase) {
  const SocDescription soc = socdesc::parse_description(kShowcase);
  const socdesc::ElaboratedSoc elaborated =
      socdesc::elaborate(soc.controllers.front());
  ASSERT_TRUE(lint_design(elaborated.design).clean());

  socdesc::CompileOptions options;
  options.trace_cycles = 20000;  // plenty for a width-10 key in tests
  const sim::ScenarioConfig config =
      socdesc::compile_scenario(elaborated, options);
  EXPECT_EQ(config.watermark.wgc.width, 10u);
  EXPECT_EQ(config.watermark.wgc.seed, 0x2au);
  EXPECT_EQ(config.trace_cycles, 20000u);
  EXPECT_DOUBLE_EQ(config.tech.clock_hz, 48e6);
  EXPECT_GT(config.fabric_power_w, 0.0);

  const sim::Scenario scenario(config);
  const detect::Session session;
  const detect::Report report = session.run(scenario);
  EXPECT_TRUE(report.detected) << report.detection.reason;
  EXPECT_GT(report.confidence, 0.99);
  ASSERT_TRUE(report.scenario);
}

TEST(SocDescCompile, GeneratedSocDetectsEndToEnd) {
  socdesc::GeneratorOptions goptions;
  goptions.seed = 3;
  const SocDescription soc =
      socdesc::parse_description(socdesc::generate_description(goptions));
  const socdesc::ElaboratedSoc elaborated =
      socdesc::elaborate(soc.controllers.front());
  socdesc::CompileOptions options;
  options.trace_cycles = 20000;
  options.target = elaborated.design.watermarks().front().name;
  const sim::Scenario scenario(
      socdesc::compile_scenario(elaborated, options));
  const detect::Report report = detect::Session().run(scenario);
  EXPECT_TRUE(report.detected) << report.detection.reason;
}

TEST(SocDescCompile, RequiresAWatermarkedDomain) {
  SocDescription soc = socdesc::parse_description(kShowcase);
  ClockController& ctrl = soc.controllers.front();
  ctrl.targets[0].watermark.reset();
  const socdesc::ElaboratedSoc elaborated = socdesc::elaborate(ctrl);
  EXPECT_THROW(socdesc::compile_scenario(elaborated), SocError);
}

TEST(SocDescCompile, RejectsUnknownTargetSelection) {
  const SocDescription soc = socdesc::parse_description(kShowcase);
  const socdesc::ElaboratedSoc elaborated =
      socdesc::elaborate(soc.controllers.front());
  socdesc::CompileOptions options;
  options.target = "gpu";
  EXPECT_THROW(socdesc::compile_scenario(elaborated, options), SocError);
}

}  // namespace
}  // namespace clockmark
