// Diagnostics, reporters and the cm-lint-1 JSON round-trip.
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "lint/report.h"

namespace clockmark::lint {
namespace {

Diagnostic make_diag(std::string rule, Severity severity,
                     std::string location, std::string message,
                     std::string hint = "") {
  return Diagnostic{std::move(rule), severity, std::move(location),
                    std::move(message), std::move(hint)};
}

LintReport make_report() {
  LintReport report;
  report.design = "unit \"design\"";
  report.diagnostics = {
      make_diag("removable-watermark", Severity::kError, "soc/watermark",
                "line one\nline two\ttabbed", "cut the \\ escape"),
      make_diag("sequence-balance", Severity::kWarning, "wm", "duty 0.9"),
      make_diag("unmodulated-clock", Severity::kInfo, "clk",
                "3 flops, control char \x01 included"),
  };
  report.counts = count_diagnostics(report.diagnostics);
  return report;
}

TEST(LintSeverity, NamesRoundTrip) {
  for (const Severity s :
       {Severity::kInfo, Severity::kWarning, Severity::kError}) {
    EXPECT_EQ(parse_severity(severity_name(s)), s);
  }
  EXPECT_THROW((void)parse_severity("fatal"), std::invalid_argument);
  EXPECT_THROW((void)parse_severity(""), std::invalid_argument);
}

TEST(LintSeverity, CountsBySeverity) {
  const auto counts = count_diagnostics(make_report().diagnostics);
  EXPECT_EQ(counts.errors, 1u);
  EXPECT_EQ(counts.warnings, 1u);
  EXPECT_EQ(counts.infos, 1u);
}

TEST(LintJsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(LintTextReporter, ShowsRuleLocationAndHint) {
  std::ostringstream os;
  TextReporter().write(make_report(), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("1 error(s), 1 warning(s), 1 info(s)"),
            std::string::npos);
  EXPECT_NE(text.find("[error] removable-watermark @ soc/watermark"),
            std::string::npos);
  EXPECT_NE(text.find("hint: cut the \\ escape"), std::string::npos);
}

TEST(LintTextReporter, HintsCanBeSuppressed) {
  std::ostringstream os;
  TextReporter({/*hints=*/false}).write(make_report(), os);
  EXPECT_EQ(os.str().find("hint:"), std::string::npos);
}

TEST(LintJsonReporter, RoundTripsFullDocument) {
  LintReport empty;
  empty.design = "clean";
  const std::vector<LintReport> reports = {make_report(), empty};
  std::ostringstream os;
  JsonReporter().write_all(reports, os);

  const std::vector<LintReport> parsed = parse_json_reports(os.str());
  ASSERT_EQ(parsed.size(), reports.size());
  EXPECT_EQ(parsed[0], reports[0]);
  EXPECT_EQ(parsed[1], reports[1]);
}

TEST(LintJsonReporter, RoundTripsBareDesignObject) {
  const LintReport report = make_report();
  std::ostringstream os;
  JsonReporter().write(report, os);
  const std::vector<LintReport> parsed = parse_json_reports(os.str());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], report);
}

TEST(LintJsonReporter, DocumentCarriesSchemaAndAggregateSummary) {
  std::ostringstream os;
  JsonReporter().write_all(std::vector<LintReport>{make_report()}, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"cm-lint-1\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
}

TEST(LintJsonParser, AcceptsUnicodeEscapes) {
  const std::string doc =
      "{\"design\": \"d\\u0041\\ud83d\\ude00\", \"summary\": "
      "{\"errors\": 0, \"warnings\": 0, \"infos\": 0}, "
      "\"diagnostics\": []}";
  const auto parsed = parse_json_reports(doc);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].design, "dA\xf0\x9f\x98\x80");
}

TEST(LintJsonParser, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_json_reports("not json"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_json_reports("[1, 2]"), std::invalid_argument);
  EXPECT_THROW((void)parse_json_reports("{\"schema\": \"cm-lint-1\""),
               std::invalid_argument);
  // Unknown schema versions must not be silently accepted.
  EXPECT_THROW((void)parse_json_reports(
                   "{\"schema\": \"cm-lint-99\", \"designs\": [], "
                   "\"summary\": {\"errors\": 0, \"warnings\": 0, "
                   "\"infos\": 0}}"),
               std::invalid_argument);
}

TEST(LintJsonParser, RejectsTruncatedObjectsAndArrays) {
  const char* kTruncated[] = {
      "{",
      "{\"design\"",
      "{\"design\": ",
      "{\"design\": \"d",
      "{\"design\": \"d\", \"diagnostics\": [",
      "{\"design\": \"d\", \"diagnostics\": [{\"rule\": \"r\"",
      "{\"design\": \"d\", \"diagnostics\": []",
      "{\"design\": \"d\\",
      "{\"design\": \"d\\u00",
  };
  for (const char* doc : kTruncated) {
    EXPECT_THROW((void)parse_json_reports(doc), std::invalid_argument)
        << doc;
  }
}

TEST(LintJsonParser, RejectsDuplicateObjectKeys) {
  // Whichever copy a lenient parser kept could flip a CI verdict, so
  // duplicates are malformed, not best-effort.
  const std::string doc =
      "{\"design\": \"a\", \"design\": \"b\", \"summary\": "
      "{\"errors\": 0, \"warnings\": 0, \"infos\": 0}, "
      "\"diagnostics\": []}";
  EXPECT_THROW((void)parse_json_reports(doc), std::invalid_argument);
  const std::string nested =
      "{\"design\": \"d\", \"summary\": {\"errors\": 0, \"errors\": 0, "
      "\"warnings\": 0, \"infos\": 0}, \"diagnostics\": []}";
  EXPECT_THROW((void)parse_json_reports(nested), std::invalid_argument);
}

TEST(LintJsonParser, RejectsBadUnicodeEscapes) {
  const char* kBad[] = {
      "{\"design\": \"\\uZZZZ\", \"summary\": {\"errors\": 0, "
      "\"warnings\": 0, \"infos\": 0}, \"diagnostics\": []}",
      // Lone high surrogate (no low half follows).
      "{\"design\": \"\\ud83d\", \"summary\": {\"errors\": 0, "
      "\"warnings\": 0, \"infos\": 0}, \"diagnostics\": []}",
      // Lone low surrogate.
      "{\"design\": \"\\ude00\", \"summary\": {\"errors\": 0, "
      "\"warnings\": 0, \"infos\": 0}, \"diagnostics\": []}",
      // High surrogate followed by a non-surrogate escape.
      "{\"design\": \"\\ud83d\\u0041\", \"summary\": {\"errors\": 0, "
      "\"warnings\": 0, \"infos\": 0}, \"diagnostics\": []}",
      // Unknown single-character escape.
      "{\"design\": \"\\q\", \"summary\": {\"errors\": 0, "
      "\"warnings\": 0, \"infos\": 0}, \"diagnostics\": []}",
  };
  for (const char* doc : kBad) {
    EXPECT_THROW((void)parse_json_reports(doc), std::invalid_argument)
        << doc;
  }
}

TEST(LintJsonParser, EnforcesTheStrictNumberGrammar) {
  const auto doc_with_errors = [](const char* number) {
    return "{\"design\": \"d\", \"summary\": {\"errors\": " +
           std::string(number) +
           ", \"warnings\": 0, \"infos\": 0}, \"diagnostics\": []}";
  };
  // Valid JSON numbers parse...
  EXPECT_NO_THROW((void)parse_json_reports(doc_with_errors("0")));
  EXPECT_NO_THROW((void)parse_json_reports(doc_with_errors("0.0e1")));
  // ...and the stod-permissive forms RFC 8259 forbids do not.
  for (const char* bad : {"+1", "01", ".5", "1.", "1e", "1e+", "-",
                          "0x10", "1..2", "nan", "inf"}) {
    EXPECT_THROW((void)parse_json_reports(doc_with_errors(bad)),
                 std::invalid_argument)
        << bad;
  }
}

TEST(LintJsonParser, RejectsSummaryDisagreeingWithDiagnostics) {
  const std::string doc =
      "{\"design\": \"d\", \"summary\": {\"errors\": 2, \"warnings\": 0, "
      "\"infos\": 0}, \"diagnostics\": []}";
  EXPECT_THROW((void)parse_json_reports(doc), std::invalid_argument);
}

TEST(LintJsonParser, RejectsUnknownSeverity) {
  const std::string doc =
      "{\"design\": \"d\", \"summary\": {\"errors\": 0, \"warnings\": 0, "
      "\"infos\": 1}, \"diagnostics\": [{\"rule\": \"r\", \"severity\": "
      "\"fatal\", \"location\": \"l\", \"message\": \"m\", "
      "\"hint\": \"\"}]}";
  EXPECT_THROW((void)parse_json_reports(doc), std::invalid_argument);
}

}  // namespace
}  // namespace clockmark::lint
