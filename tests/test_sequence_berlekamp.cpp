#include "sequence/berlekamp.h"

#include <gtest/gtest.h>

#include "sequence/lfsr.h"
#include "sequence/polynomials.h"
#include "util/rng.h"

namespace clockmark::sequence {
namespace {

TEST(BerlekampMassey, ConstantSequences) {
  EXPECT_EQ(berlekamp_massey(std::vector<bool>(20, false)).length, 0u);
  // All-ones has linear complexity 1 (s_t = s_{t-1}).
  EXPECT_EQ(berlekamp_massey(std::vector<bool>(20, true)).length, 1u);
}

TEST(BerlekampMassey, AlternatingSequence) {
  // 1010... satisfies the homogeneous recurrence s_t = s_{t-2}; the
  // inhomogeneous s_t = s_{t-1} XOR 1 is not expressible, so the linear
  // complexity is 2.
  std::vector<bool> s(20);
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = (i % 2) == 0;
  EXPECT_EQ(berlekamp_massey(s).length, 2u);
}

class RecoverWidth : public ::testing::TestWithParam<unsigned> {};

TEST_P(RecoverWidth, LinearComplexityEqualsWidth) {
  const unsigned w = GetParam();
  Lfsr lfsr(w, maximal_taps(w), 1);
  const auto bits = lfsr.generate(4 * w);  // 2w suffices; use 4w
  const auto desc = berlekamp_massey(bits);
  EXPECT_EQ(desc.length, w);
}

TEST_P(RecoverWidth, PredictsContinuationPerfectly) {
  const unsigned w = GetParam();
  Lfsr lfsr(w, maximal_taps(w), 0x3);
  const auto all = lfsr.generate(6 * w + 50);
  const std::vector<bool> train(all.begin(), all.begin() + 4 * w);
  const auto desc = berlekamp_massey(train);
  const auto predicted =
      predict_continuation(desc, train, all.size() - train.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    ASSERT_EQ(predicted[i], all[train.size() + i]) << "bit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, RecoverWidth,
                         ::testing::Values(4u, 7u, 9u, 12u, 16u));

TEST(KeyRecovery, CleanStreamIsBroken) {
  // The attacker's ideal case: a perfectly clean WMARK stream. 2L bits
  // break the key — this is why the WMARK net must never be observable.
  Lfsr lfsr(12, maximal_taps(12), 1);
  const auto observed = lfsr.generate(500);
  const auto result = attempt_key_recovery(observed, 100, 12);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.recovered.length, 12u);
  EXPECT_DOUBLE_EQ(result.prediction_accuracy, 1.0);
}

TEST(KeyRecovery, NoisyStreamDefeatsRecovery) {
  // Even 2 % bit-flip noise destroys the linear structure: the measured
  // linear complexity explodes and prediction collapses to chance.
  Lfsr lfsr(12, maximal_taps(12), 1);
  auto observed = lfsr.generate(2000);
  util::Pcg32 rng(5);
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (rng.bernoulli(0.02)) observed[i] = !observed[i];
  }
  const auto result = attempt_key_recovery(observed, 1000, 12);
  EXPECT_FALSE(result.exact);
  EXPECT_GT(result.recovered.length, 100u);  // complexity blow-up
  EXPECT_LT(result.prediction_accuracy, 0.7);
}

TEST(KeyRecovery, TooFewBitsCannotIdentify) {
  Lfsr lfsr(16, maximal_taps(16), 1);
  const auto observed = lfsr.generate(40);
  // Fewer than 2L bits: BM returns a shorter (wrong) register.
  const auto result = attempt_key_recovery(observed, 20, 16);
  EXPECT_FALSE(result.exact);
}

TEST(PredictContinuation, ZeroLengthLfsrPredictsZeros) {
  LfsrDescription d;
  d.length = 0;
  d.connection = {true};
  const auto p = predict_continuation(d, {true, false}, 4);
  EXPECT_EQ(p, std::vector<bool>(4, false));
}

}  // namespace
}  // namespace clockmark::sequence
