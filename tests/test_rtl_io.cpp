#include "rtl/netlist_io.h"
#include "rtl/vcd.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "watermark/clock_modulation.h"
#include "watermark/load_circuit.h"

namespace clockmark::rtl {
namespace {

Netlist sample_netlist() {
  Netlist nl;
  const auto m = nl.module("soc/blk");
  const NetId clk = nl.add_net("clk");
  const NetId en = nl.add_net("en");
  const NetId gclk = nl.add_net("gclk");
  const NetId d = nl.add_net("d");
  const NetId q = nl.add_net("q");
  const NetId nq = nl.add_net("nq");
  const NetId buf_out = nl.add_net("buf_out");
  nl.mark_input(en);
  nl.mark_output(nq);
  nl.add_icg("icg0", m, clk, en, gclk);
  nl.add_flop(CellKind::kDff, "ff0", m, {d}, q, gclk, true);
  nl.add_gate(CellKind::kInv, "inv0", m, {q}, nq);
  nl.add_clock_buffer("cb0", m, clk, buf_out);
  nl.add_gate(CellKind::kConst1, "one", 0, {}, d);
  return nl;
}

TEST(NetlistIo, RoundTripSmall) {
  const Netlist original = sample_netlist();
  const std::string text = netlist_to_string(original);
  const Netlist parsed = netlist_from_string(text);
  EXPECT_TRUE(structurally_equal(original, parsed));
  // And a second round trip is byte-identical.
  EXPECT_EQ(netlist_to_string(parsed), text);
}

TEST(NetlistIo, RoundTripFullWatermarkDesigns) {
  {
    Netlist nl;
    const NetId clk = nl.add_net("clk");
    watermark::ClockModConfig cfg;
    cfg.words = 4;
    cfg.bits_per_word = 8;
    build_clock_modulation_watermark(nl, "wm", clk, cfg);
    const Netlist parsed = netlist_from_string(netlist_to_string(nl));
    EXPECT_TRUE(structurally_equal(nl, parsed));
  }
  {
    Netlist nl;
    const NetId clk = nl.add_net("clk");
    watermark::LoadCircuitConfig cfg;
    cfg.load_registers = 16;
    build_load_circuit_watermark(nl, "wm", clk, cfg);
    const Netlist parsed = netlist_from_string(netlist_to_string(nl));
    EXPECT_TRUE(structurally_equal(nl, parsed));
  }
}

TEST(NetlistIo, ParsedNetlistSimulatesIdentically) {
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  watermark::ClockModConfig cfg;
  cfg.wgc.width = 6;
  cfg.words = 1;
  cfg.bits_per_word = 4;
  const auto wm = build_clock_modulation_watermark(nl, "wm", clk, cfg);
  Netlist parsed = netlist_from_string(netlist_to_string(nl));

  Simulator a(nl);
  a.set_clock_source(clk);
  Simulator b(parsed);
  b.set_clock_source(*parsed.find_net("clk"));
  const NetId wmark_b = *parsed.find_net(nl.net_name(wm.wmark));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.net_value(wm.wmark), b.net_value(wmark_b)) << "cycle " << i;
    const auto& aa = a.step();
    const auto& bb = b.step();
    EXPECT_EQ(aa.total.clocked_flops, bb.total.clocked_flops);
    EXPECT_EQ(aa.total.active_buffers, bb.total.active_buffers);
  }
}

TEST(NetlistIo, CommentsAndBlankLinesIgnored) {
  const Netlist nl = netlist_from_string(R"(
# a comment
net a

net b   # trailing
cell INV g1 - b - 0 a
)");
  EXPECT_EQ(nl.net_count(), 2u);
  EXPECT_EQ(nl.cell_count(), 1u);
}

TEST(NetlistIo, ErrorsCarryLineNumbers) {
  try {
    netlist_from_string("net a\ncell BOGUS g - a - 0 a\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(NetlistIo, UnknownNetRejected) {
  EXPECT_THROW(netlist_from_string("cell INV g - x - 0 y\n"),
               std::runtime_error);
}

TEST(NetlistIo, WrongInputCountRejected) {
  EXPECT_THROW(
      netlist_from_string("net a\nnet o\ncell AND2 g - o - 0 a\n"),
      std::runtime_error);
}

TEST(NetlistIo, FlopWithoutClockRejected) {
  EXPECT_THROW(
      netlist_from_string("net d\nnet q\ncell DFF f - q - 0 d\n"),
      std::runtime_error);
}

TEST(NetlistIo, StructurallyUnequalDetected) {
  const Netlist a = sample_netlist();
  Netlist b = sample_netlist();
  // Mutate: flip an init state via rebuild.
  b.cell(1).init_state = !b.cell(1).init_state;
  EXPECT_FALSE(structurally_equal(a, b));
}

class VcdTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string slurp() {
    std::ifstream in(path_);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }
  std::string path_ = ::testing::TempDir() + "cm_test.vcd";
};

TEST_F(VcdTest, WritesHeaderAndTransitions) {
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const NetId q = nl.add_net("q");
  const NetId nq = nl.add_net("nq");
  nl.add_gate(CellKind::kInv, "i", 0, {q}, nq);
  nl.add_flop(CellKind::kDff, "f", 0, {nq}, q, clk, false);
  Simulator sim(nl);
  sim.set_clock_source(clk);
  {
    VcdWriter vcd(path_, sim, {{"q", q}, {"nq", nq}});
    for (int i = 0; i < 6; ++i) {
      vcd.sample();
      sim.step();
    }
  }
  const std::string text = slurp();
  EXPECT_NE(text.find("$timescale 100ns $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 ! q $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 \" nq $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
  // q toggles every cycle: transitions at #0..#5.
  EXPECT_NE(text.find("#0"), std::string::npos);
  EXPECT_NE(text.find("#5"), std::string::npos);
  EXPECT_NE(text.find("1!"), std::string::npos);
  EXPECT_NE(text.find("0!"), std::string::npos);
}

TEST_F(VcdTest, OnlyChangesEmitted) {
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const NetId q = nl.add_net("q");
  nl.add_flop(CellKind::kDff, "f", 0, {q}, q, clk, true);  // holds 1
  Simulator sim(nl);
  sim.set_clock_source(clk);
  {
    VcdWriter vcd(path_, sim, {{"q", q}});
    for (int i = 0; i < 10; ++i) {
      vcd.sample();
      sim.step();
    }
  }
  const std::string text = slurp();
  // Exactly one value line for the constant signal.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = text.find("1!", pos)) != std::string::npos) {
    ++count;
    pos += 2;
  }
  EXPECT_EQ(count, 1u);
}

TEST(Vcd, UnwritablePathThrows) {
  Netlist nl;
  const NetId q = nl.add_net("q");
  Simulator sim(nl);
  EXPECT_THROW(
      VcdWriter("/nonexistent_dir_xyz/x.vcd", sim, {{"q", q}}),
      std::runtime_error);
}

}  // namespace
}  // namespace clockmark::rtl
