// Scenario::run_batch and the batched repeatability study: the
// repetition-batched path (SoA acquisition lanes + shared
// cpa::SpectrumEngine) must be bit-identical to the historical
// run-one-repetition-at-a-time loop — per chip, per lane, parallel or
// serial. These are scheduling changes; the bits are pinned here.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "cpa/detector.h"
#include "cpa/repeatability.h"
#include "cpa/spectrum_engine.h"
#include "cpa/spread_spectrum.h"
#include "runtime/executor.h"
#include "sim/experiment.h"
#include "sim/scenario.h"

namespace clockmark::sim {
namespace {

ScenarioConfig fast_config(ChipModel chip) {
  ScenarioConfig cfg =
      chip == ChipModel::kChip1 ? chip1_default() : chip2_default();
  cfg.trace_cycles = 12000;
  return cfg;
}

void expect_rep_identical(const BatchScenarioRepetition& batched,
                          const ScenarioResult& reference) {
  EXPECT_EQ(batched.true_rotation, reference.true_rotation);
  const auto& a = batched.acquisition;
  const auto& b = reference.acquisition;
  ASSERT_EQ(a.per_cycle_power_w.size(), b.per_cycle_power_w.size());
  for (std::size_t i = 0; i < a.per_cycle_power_w.size(); ++i) {
    ASSERT_EQ(a.per_cycle_power_w[i], b.per_cycle_power_w[i])
        << "cycle " << i;
  }
  EXPECT_EQ(a.mean_power_w, b.mean_power_w);
  EXPECT_EQ(a.lsb_power_w, b.lsb_power_w);
}

TEST(BatchAcquireScenario, MatchesPerRepBitExactChip1) {
  const Scenario sc(fast_config(ChipModel::kChip1));
  const auto batched = sc.run_batch(0, 6);
  ASSERT_EQ(batched.size(), 6u);
  for (std::size_t rep = 0; rep < 6; ++rep) {
    SCOPED_TRACE("rep=" + std::to_string(rep));
    expect_rep_identical(batched[rep], sc.run(rep));
  }
}

TEST(BatchAcquireScenario, MatchesPerRepBitExactChip2) {
  // Chip II replays the seeded A5/fabric noise overlay per lane on the
  // cached M0 base — the serial data-dependent recurrence must land in
  // each lane's total exactly as in run().
  const Scenario sc(fast_config(ChipModel::kChip2));
  const auto batched = sc.run_batch(0, 5);
  ASSERT_EQ(batched.size(), 5u);
  for (std::size_t rep = 0; rep < 5; ++rep) {
    SCOPED_TRACE("rep=" + std::to_string(rep));
    expect_rep_identical(batched[rep], sc.run(rep));
  }
}

TEST(BatchAcquireScenario, UnpinnedPhaseAndOffsetRange) {
  // Non-zero first repetition and derived (unpinned) phases: each lane
  // must pick up its own repetition's seed derivations.
  ScenarioConfig cfg = fast_config(ChipModel::kChip1);
  cfg.phase_offset.reset();
  const Scenario sc(cfg);
  const auto batched = sc.run_batch(3, 5);
  ASSERT_EQ(batched.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    SCOPED_TRACE("rep=" + std::to_string(3 + i));
    expect_rep_identical(batched[i], sc.run(3 + i));
  }
}

TEST(BatchAcquireScenario, InactiveWatermarkAndFallbackConfigs) {
  // Disabled watermark batches (leakage-only add); trigger-offset and
  // PDN-less studies take the per-repetition fallback — all bit-exact.
  for (int variant = 0; variant < 3; ++variant) {
    ScenarioConfig cfg = fast_config(ChipModel::kChip1);
    cfg.trace_cycles = 8000;
    if (variant == 0) cfg.watermark_active = false;
    if (variant == 1) {
      cfg.acquisition.trigger_sim = measure::TriggerSim::kRandomOffset;
    }
    if (variant == 2) cfg.acquisition.enable_pdn_filter = false;
    const Scenario sc(cfg);
    const auto batched = sc.run_batch(0, 3);
    ASSERT_EQ(batched.size(), 3u);
    for (std::size_t rep = 0; rep < 3; ++rep) {
      SCOPED_TRACE("variant=" + std::to_string(variant) +
                   " rep=" + std::to_string(rep));
      expect_rep_identical(batched[rep], sc.run(rep));
    }
  }
}

TEST(BatchAcquireSpectrumEngine, SweepMatchesDirectComputation) {
  const Scenario sc(fast_config(ChipModel::kChip1));
  const cpa::SpectrumEngine engine(sc.model_pattern());
  for (std::size_t rep = 0; rep < 2; ++rep) {
    const ScenarioResult r = sc.run(rep);
    const cpa::SpreadSpectrum direct = cpa::compute_spread_spectrum(
        r.acquisition.per_cycle_power_w, sc.model_pattern(),
        cpa::CorrelationMethod::kFft, 8);
    const cpa::SpreadSpectrum cached =
        engine.sweep(r.acquisition.per_cycle_power_w, 8);
    ASSERT_EQ(cached.rho.size(), direct.rho.size());
    for (std::size_t k = 0; k < direct.rho.size(); ++k) {
      ASSERT_EQ(cached.rho[k], direct.rho[k]) << "rotation " << k;
    }
    EXPECT_EQ(cached.peak_rotation, direct.peak_rotation);
    EXPECT_EQ(cached.peak_value, direct.peak_value);
    EXPECT_EQ(cached.second_peak, direct.second_peak);
    EXPECT_EQ(cached.noise_mean, direct.noise_mean);
    EXPECT_EQ(cached.noise_std, direct.noise_std);
    EXPECT_EQ(cached.peak_z, direct.peak_z);
  }
}

void expect_study_identical(const cpa::RepeatabilityResult& a,
                            const cpa::RepeatabilityResult& b) {
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].in_phase_rho, b.samples[i].in_phase_rho);
    EXPECT_EQ(a.samples[i].max_off_phase, b.samples[i].max_off_phase);
    EXPECT_EQ(a.samples[i].detected, b.samples[i].detected);
  }
  EXPECT_EQ(a.detections, b.detections);
  EXPECT_EQ(a.repetitions, b.repetitions);
  EXPECT_EQ(a.in_phase.median, b.in_phase.median);
  EXPECT_EQ(a.off_phase.median, b.off_phase.median);
}

TEST(BatchAcquireStudy, MatchesHistoricalPerRepLoop) {
  // The batched study must summarise exactly what the pre-batching
  // per-repetition loop produced: run(rep) + one spread-spectrum sweep
  // + the detector verdict, folded by summarize_repetitions.
  ScenarioConfig cfg = fast_config(ChipModel::kChip1);
  cfg.trace_cycles = 8000;
  const Scenario sc(cfg);
  const cpa::DetectorPolicy policy;
  const cpa::Detector detector(policy);
  constexpr std::size_t kReps = 10;  // not a multiple of the lane block
  std::vector<cpa::RepetitionOutcome> outcomes(kReps);
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    const ScenarioResult r = sc.run(rep);
    outcomes[rep].spectrum = cpa::compute_spread_spectrum(
        r.acquisition.per_cycle_power_w, r.pattern,
        cpa::CorrelationMethod::kFft, policy.guard);
    outcomes[rep].true_rotation = r.true_rotation;
    outcomes[rep].detected = detector.decide(outcomes[rep].spectrum).detected;
  }
  const cpa::RepeatabilityResult expected =
      cpa::summarize_repetitions(outcomes, policy.guard);
  const cpa::RepeatabilityResult got =
      run_repeatability_study(sc, kReps, policy, nullptr);
  expect_study_identical(got, expected);
}

TEST(BatchAcquireStudy, ParallelMatchesSerial) {
  ScenarioConfig cfg = fast_config(ChipModel::kChip2);
  cfg.trace_cycles = 8000;
  const Scenario sc(cfg);
  const cpa::DetectorPolicy policy;
  const cpa::RepeatabilityResult serial =
      run_repeatability_study(sc, 20, policy, nullptr);
  runtime::Executor executor(4);
  const cpa::RepeatabilityResult parallel =
      run_repeatability_study(sc, 20, policy, &executor);
  expect_study_identical(parallel, serial);
}

}  // namespace
}  // namespace clockmark::sim
