#include "attack/analysis.h"
#include "attack/removal.h"
#include "attack/report.h"

#include <gtest/gtest.h>

#include "watermark/clock_modulation.h"
#include "watermark/embedder.h"
#include "watermark/load_circuit.h"

namespace clockmark::attack {
namespace {

wgc::WgcConfig small_wgc() {
  wgc::WgcConfig cfg;
  cfg.width = 6;
  return cfg;
}

struct TwoDesigns {
  rtl::Netlist load_nl;
  rtl::NetId load_clk = 0;
  rtl::NetId load_out = 0;

  rtl::Netlist embed_nl;
  rtl::NetId embed_clk = 0;
  rtl::NetId embed_out = 0;
};

TwoDesigns build_designs() {
  TwoDesigns d;
  {
    d.load_clk = d.load_nl.add_net("clk");
    const auto ip = watermark::build_demo_ip_block(d.load_nl, "soc/ip",
                                                   d.load_clk, {2, 16});
    d.load_out = ip.data_out;
    watermark::LoadCircuitConfig lc;
    lc.wgc = small_wgc();
    lc.load_registers = 32;
    watermark::build_load_circuit_watermark(d.load_nl, "soc/watermark",
                                            d.load_clk, lc);
  }
  {
    d.embed_clk = d.embed_nl.add_net("clk");
    const auto ip = watermark::build_demo_ip_block(d.embed_nl, "soc/ip",
                                                   d.embed_clk, {2, 16});
    d.embed_out = ip.data_out;
    watermark::embed_clock_modulation(d.embed_nl, "soc/watermark",
                                      d.embed_clk, small_wgc(), ip.icgs);
  }
  return d;
}

TEST(StandaloneAnalysis, LoadCircuitWatermarkIsFlagged) {
  const auto d = build_designs();
  const auto found = find_standalone_circuits(d.load_nl);
  ASSERT_GE(found.size(), 1u);
  // The biggest suspicious circuit is the watermark: WGC + load ring.
  const auto& sc = found.front();
  EXPECT_GE(sc.register_count, 32u + 6u);
  bool names_watermark = false;
  for (const auto& m : sc.module_paths) {
    if (m.find("watermark") != std::string::npos) names_watermark = true;
  }
  EXPECT_TRUE(names_watermark);
  const auto wm_cells = cells_under_module(d.load_nl, "soc/watermark");
  EXPECT_DOUBLE_EQ(attacker_recall(found, wm_cells), 1.0);
}

TEST(StandaloneAnalysis, EmbeddedWatermarkIsInvisible) {
  const auto d = build_designs();
  const auto found = find_standalone_circuits(d.embed_nl);
  const auto wm_cells = cells_under_module(d.embed_nl, "soc/watermark");
  ASSERT_FALSE(wm_cells.empty());
  // The WGC feeds functional clock gates, so it reaches the primary
  // output and is never flagged.
  EXPECT_DOUBLE_EQ(attacker_recall(found, wm_cells), 0.0);
}

TEST(StandaloneAnalysis, MinCellsFiltersStubs) {
  rtl::Netlist nl;
  const rtl::NetId a = nl.add_net("a");
  const rtl::NetId b = nl.add_net("b");
  const rtl::NetId out = nl.add_net("out");
  nl.mark_output(out);
  nl.add_gate(rtl::CellKind::kInv, "live", 0, {a}, out);
  nl.add_gate(rtl::CellKind::kInv, "stub", 0, {a}, b);  // 1-cell island
  EXPECT_TRUE(find_standalone_circuits(nl, 4).empty());
  EXPECT_EQ(find_standalone_circuits(nl, 1).size(), 1u);
}

TEST(AttackerRecall, EmptyWatermarkIsZero) {
  EXPECT_EQ(attacker_recall({}, {}), 0.0);
}

TEST(Removal, LoadCircuitRemovalLeavesFunctionIntact) {
  const auto d = build_designs();
  const auto victims = cells_under_module(d.load_nl, "soc/watermark");
  const auto outcome = simulate_removal_attack(d.load_nl, victims,
                                               d.load_clk, d.load_out, 200);
  EXPECT_EQ(outcome.cells_removed, victims.size());
  EXPECT_EQ(outcome.output_mismatch_cycles, 0u);
  EXPECT_TRUE(outcome.functionally_intact());
  EXPECT_EQ(outcome.unclocked_registers, 0u);
}

TEST(Removal, EmbeddedRemovalBreaksTheDesign) {
  const auto d = build_designs();
  const auto victims = cells_under_module(d.embed_nl, "soc/watermark");
  const auto outcome = simulate_removal_attack(
      d.embed_nl, victims, d.embed_clk, d.embed_out, 200);
  // Deleting the WGC leaves every functional ICG enable undriven-low:
  // the pipelines never clock again and the output diverges.
  EXPECT_GT(outcome.output_mismatch_cycles, 0u);
  EXPECT_FALSE(outcome.functionally_intact());
}

TEST(Removal, RemovingIcgsUnclocksRegisters) {
  // Directly deleting the functional clock gates strands their flops.
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  const auto ip = watermark::build_demo_ip_block(nl, "ip", clk, {2, 16});
  const auto outcome = simulate_removal_attack(
      nl, std::vector<rtl::CellId>(ip.icgs.begin(), ip.icgs.end()), clk,
      ip.data_out, 64);
  // 2 groups x 16 registers behind the deleted ICGs (the leaf buffers
  // below them are also stranded).
  EXPECT_GE(outcome.unclocked_registers, 32u);
}

TEST(Removal, EmptyVictimSetIsNoOp) {
  const auto d = build_designs();
  const auto outcome =
      simulate_removal_attack(d.load_nl, {}, d.load_clk, d.load_out, 64);
  EXPECT_EQ(outcome.cells_removed, 0u);
  EXPECT_TRUE(outcome.functionally_intact());
}

TEST(RobustnessStudy, ReproducesSectionSixConclusions) {
  RobustnessStudyConfig cfg;
  cfg.ip = {2, 16};
  cfg.wgc = small_wgc();
  cfg.load_registers = 32;
  cfg.compare_cycles = 128;
  const auto report = run_robustness_study(cfg);

  // State of the art: fully visible, freely removable.
  EXPECT_DOUBLE_EQ(report.load_circuit.attacker_recall, 1.0);
  EXPECT_TRUE(report.load_circuit.removal.functionally_intact());

  // Proposed: invisible to stand-alone analysis, removal destroys the IP.
  EXPECT_DOUBLE_EQ(report.clock_modulation.attacker_recall, 0.0);
  EXPECT_FALSE(report.clock_modulation.removal.functionally_intact());

  // Area: the clock-modulation watermark adds only the WGC.
  EXPECT_LT(report.clock_modulation.watermark_registers,
            report.load_circuit.watermark_registers);

  const std::string text = to_string(report);
  EXPECT_NE(text.find("clock modulation"), std::string::npos);
  EXPECT_NE(text.find("BROKEN"), std::string::npos);
  EXPECT_NE(text.find("removable"), std::string::npos);
}

}  // namespace
}  // namespace clockmark::attack
