#include "power/report.h"

#include <gtest/gtest.h>

#include "rtl/simulator.h"
#include "watermark/clock_modulation.h"

namespace clockmark::power {
namespace {

TEST(PowerReport, ContainsModulesAndTotals) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  watermark::ClockModConfig cfg;
  cfg.wgc.width = 6;
  cfg.words = 2;
  cfg.bits_per_word = 8;
  build_clock_modulation_watermark(nl, "soc/watermark", clk, cfg);
  rtl::Simulator sim(nl);
  sim.set_clock_source(clk);
  const auto cycles = sim.run(63);
  const PowerEstimator est(nl, tsmc65lp_like());
  ReportOptions opts;
  opts.title = "test report";
  const std::string report = format_power_report(est, cycles, opts);
  EXPECT_NE(report.find("test report"), std::string::npos);
  EXPECT_NE(report.find("soc/watermark"), std::string::npos);
  EXPECT_NE(report.find("TOTAL"), std::string::npos);
  EXPECT_NE(report.find("dynamic[uW]"), std::string::npos);
  EXPECT_NE(report.find("area[um2]"), std::string::npos);
}

TEST(PowerReport, AreaColumnOptional) {
  rtl::Netlist nl;
  const PowerEstimator est(nl, tsmc65lp_like());
  ReportOptions opts;
  opts.show_area = false;
  const std::string report =
      format_power_report(est, std::vector<rtl::CycleActivity>{}, opts);
  EXPECT_EQ(report.find("area"), std::string::npos);
}

TEST(PowerReport, EmptyRunIsLeakageOnly) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  const rtl::NetId q = nl.add_net("q");
  nl.add_flop(rtl::CellKind::kDff, "f", nl.module("m"), {q}, q, clk);
  const PowerEstimator est(nl, tsmc65lp_like());
  const std::string report =
      format_power_report(est, std::vector<rtl::CycleActivity>{});
  EXPECT_NE(report.find("m"), std::string::npos);
}

}  // namespace
}  // namespace clockmark::power
