#include "rtl/connectivity.h"

#include <gtest/gtest.h>

namespace clockmark::rtl {
namespace {

// Fixture: a live path (in -> inv -> out) plus a dangling two-cell island.
class ConnectivityFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    in_ = nl_.add_net("in");
    mid_ = nl_.add_net("mid");
    out_ = nl_.add_net("out");
    island_a_ = nl_.add_net("ia");
    island_b_ = nl_.add_net("ib");
    island_c_ = nl_.add_net("ic");
    nl_.mark_input(in_);
    nl_.mark_output(out_);
    live1_ = nl_.add_gate(CellKind::kInv, "live1", 0, {in_}, mid_);
    live2_ = nl_.add_gate(CellKind::kInv, "live2", 0, {mid_}, out_);
    dead1_ = nl_.add_gate(CellKind::kInv, "dead1", 0, {island_a_}, island_b_);
    dead2_ = nl_.add_gate(CellKind::kInv, "dead2", 0, {island_b_}, island_c_);
  }

  Netlist nl_;
  NetId in_ = 0, mid_ = 0, out_ = 0;
  NetId island_a_ = 0, island_b_ = 0, island_c_ = 0;
  CellId live1_ = 0, live2_ = 0, dead1_ = 0, dead2_ = 0;
};

TEST_F(ConnectivityFixture, ReachesPrimaryOutput) {
  const ConnectivityGraph g(nl_);
  const auto reaches = g.reaches_primary_output();
  EXPECT_TRUE(reaches[live1_]);
  EXPECT_TRUE(reaches[live2_]);
  EXPECT_FALSE(reaches[dead1_]);
  EXPECT_FALSE(reaches[dead2_]);
}

TEST_F(ConnectivityFixture, ReachableFromInputs) {
  const ConnectivityGraph g(nl_);
  const auto reachable = g.reachable_from_primary_inputs();
  EXPECT_TRUE(reachable[live1_]);
  EXPECT_TRUE(reachable[live2_]);
  EXPECT_FALSE(reachable[dead1_]);
}

TEST_F(ConnectivityFixture, FaninFanoutCones) {
  const ConnectivityGraph g(nl_);
  const auto fanin = g.fanin_cone({live2_});
  EXPECT_TRUE(fanin[live1_]);
  EXPECT_TRUE(fanin[live2_]);  // roots included
  EXPECT_FALSE(fanin[dead1_]);
  const auto fanout = g.fanout_cone({live1_});
  EXPECT_TRUE(fanout[live2_]);
  EXPECT_FALSE(fanout[dead2_]);
}

TEST_F(ConnectivityFixture, WeaklyConnectedComponents) {
  const ConnectivityGraph g(nl_);
  std::size_t count = 0;
  const auto comp = g.weakly_connected_components(&count);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(comp[live1_], comp[live2_]);
  EXPECT_EQ(comp[dead1_], comp[dead2_]);
  EXPECT_NE(comp[live1_], comp[dead1_]);
}

TEST(Connectivity, ClockPinCreatesEdge) {
  // A flop is reachable from the ICG driving its clock — clock cells are
  // part of the influence graph (removing them breaks the flop).
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const NetId en = nl.add_net("en");
  const NetId gclk = nl.add_net("gclk");
  const NetId d = nl.add_net("d");
  const NetId q = nl.add_net("q");
  nl.mark_output(q);
  const CellId icg = nl.add_icg("icg", 0, clk, en, gclk);
  const CellId ff = nl.add_flop(CellKind::kDff, "ff", 0, {d}, q, gclk);
  const ConnectivityGraph g(nl);
  const auto fanout = g.fanout_cone({icg});
  EXPECT_TRUE(fanout[ff]);
  // And therefore the ICG reaches the primary output through the flop.
  const auto reaches = g.reaches_primary_output();
  EXPECT_TRUE(reaches[icg]);
}

TEST(Connectivity, EmptyNetlist) {
  Netlist nl;
  const ConnectivityGraph g(nl);
  std::size_t count = 99;
  const auto comp = g.weakly_connected_components(&count);
  EXPECT_EQ(count, 0u);
  EXPECT_TRUE(comp.empty());
  EXPECT_TRUE(g.reaches_primary_output().empty());
}

TEST(Connectivity, SuccessorsDeduplicated) {
  // One cell feeding both inputs of another produces a single edge.
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId o = nl.add_net("o");
  const CellId src = nl.add_gate(CellKind::kInv, "src", 0, {a}, b);
  nl.add_gate(CellKind::kAnd2, "dst", 0, {b, b}, o);
  const ConnectivityGraph g(nl);
  EXPECT_EQ(g.successors()[src].size(), 1u);
}

}  // namespace
}  // namespace clockmark::rtl
