#include "rtl/simulator.h"

#include <gtest/gtest.h>

namespace clockmark::rtl {
namespace {

// Builds "out = <kind>(a, b)" and evaluates it for all input pairs.
struct GateCase {
  CellKind kind;
  // Truth table indexed [a][b].
  bool table[2][2];
};

class GateEval : public ::testing::TestWithParam<GateCase> {};

TEST_P(GateEval, TruthTable) {
  const GateCase& gc = GetParam();
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId o = nl.add_net("o");
  nl.mark_input(a);
  nl.mark_input(b);
  nl.add_gate(gc.kind, "g", 0, {a, b}, o);
  Simulator sim(nl);
  for (int av = 0; av < 2; ++av) {
    for (int bv = 0; bv < 2; ++bv) {
      sim.set_input(a, av != 0);
      sim.set_input(b, bv != 0);
      sim.settle();
      EXPECT_EQ(sim.net_value(o), gc.table[av][bv])
          << kind_name(gc.kind) << "(" << av << ", " << bv << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TwoInputGates, GateEval,
    ::testing::Values(
        GateCase{CellKind::kAnd2, {{false, false}, {false, true}}},
        GateCase{CellKind::kOr2, {{false, true}, {true, true}}},
        GateCase{CellKind::kXor2, {{false, true}, {true, false}}},
        GateCase{CellKind::kNand2, {{true, true}, {true, false}}},
        GateCase{CellKind::kNor2, {{true, false}, {false, false}}}));

TEST(Simulator, InverterBufferConst) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId inv_o = nl.add_net("inv_o");
  const NetId buf_o = nl.add_net("buf_o");
  const NetId c0 = nl.add_net("c0");
  const NetId c1 = nl.add_net("c1");
  nl.mark_input(a);
  nl.add_gate(CellKind::kInv, "i", 0, {a}, inv_o);
  nl.add_gate(CellKind::kBuf, "b", 0, {a}, buf_o);
  nl.add_gate(CellKind::kConst0, "z", 0, {}, c0);
  nl.add_gate(CellKind::kConst1, "o", 0, {}, c1);
  Simulator sim(nl);
  sim.set_input(a, true);
  sim.settle();
  EXPECT_FALSE(sim.net_value(inv_o));
  EXPECT_TRUE(sim.net_value(buf_o));
  EXPECT_FALSE(sim.net_value(c0));
  EXPECT_TRUE(sim.net_value(c1));
}

TEST(Simulator, MuxSelects) {
  Netlist nl;
  const NetId s = nl.add_net("s");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId o = nl.add_net("o");
  nl.mark_input(s);
  nl.mark_input(a);
  nl.mark_input(b);
  nl.add_gate(CellKind::kMux2, "m", 0, {s, a, b}, o);
  Simulator sim(nl);
  sim.set_input(a, true);
  sim.set_input(b, false);
  sim.set_input(s, false);
  sim.settle();
  EXPECT_TRUE(sim.net_value(o));  // sel=0 -> a
  sim.set_input(s, true);
  sim.settle();
  EXPECT_FALSE(sim.net_value(o));  // sel=1 -> b
}

TEST(Simulator, CombinationalChainOrderIndependent) {
  // Cells added in reverse dependency order must still settle correctly.
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId m = nl.add_net("m");
  const NetId o = nl.add_net("o");
  nl.mark_input(a);
  nl.add_gate(CellKind::kInv, "late", 0, {m}, o);   // depends on m
  nl.add_gate(CellKind::kInv, "early", 0, {a}, m);  // produces m
  Simulator sim(nl);
  sim.set_input(a, true);
  sim.settle();
  EXPECT_TRUE(sim.net_value(o));  // ~~a
}

TEST(Simulator, CombinationalLoopThrows) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.add_gate(CellKind::kInv, "g1", 0, {a}, b);
  nl.add_gate(CellKind::kInv, "g2", 0, {b}, a);
  EXPECT_THROW(Simulator sim(nl), std::invalid_argument);
}

TEST(Simulator, MultiplyDrivenNetThrows) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId o = nl.add_net("o");
  nl.add_gate(CellKind::kInv, "g1", 0, {a}, o);
  nl.add_gate(CellKind::kBuf, "g2", 0, {a}, o);
  EXPECT_THROW(Simulator sim(nl), std::invalid_argument);
}

TEST(Simulator, DffShiftChain) {
  // 3-stage shift register fed by a constant 1: ones march through.
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const NetId one = nl.add_net("one");
  nl.add_gate(CellKind::kConst1, "c1", 0, {}, one);
  const NetId q0 = nl.add_net("q0");
  const NetId q1 = nl.add_net("q1");
  const NetId q2 = nl.add_net("q2");
  nl.add_flop(CellKind::kDff, "f0", 0, {one}, q0, clk, false);
  nl.add_flop(CellKind::kDff, "f1", 0, {q0}, q1, clk, false);
  nl.add_flop(CellKind::kDff, "f2", 0, {q1}, q2, clk, false);
  Simulator sim(nl);
  sim.set_clock_source(clk);
  EXPECT_FALSE(sim.net_value(q2));
  sim.step();
  EXPECT_TRUE(sim.net_value(q0));
  EXPECT_FALSE(sim.net_value(q2));
  sim.step();
  EXPECT_TRUE(sim.net_value(q1));
  EXPECT_FALSE(sim.net_value(q2));
  sim.step();
  EXPECT_TRUE(sim.net_value(q2));
}

TEST(Simulator, DffInitState) {
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const NetId q = nl.add_net("q");
  nl.add_flop(CellKind::kDff, "f", 0, {q}, q, clk, true);  // D = Q hold
  Simulator sim(nl);
  sim.set_clock_source(clk);
  EXPECT_TRUE(sim.net_value(q));
  sim.step();
  EXPECT_TRUE(sim.net_value(q));  // holds its init value
}

TEST(Simulator, DffEnHoldsWhenDisabled) {
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const NetId en = nl.add_net("en");
  const NetId one = nl.add_net("one");
  nl.add_gate(CellKind::kConst1, "c1", 0, {}, one);
  const NetId q = nl.add_net("q");
  nl.mark_input(en);
  nl.add_flop(CellKind::kDffEn, "f", 0, {one, en}, q, clk, false);
  Simulator sim(nl);
  sim.set_clock_source(clk);
  sim.set_input(en, false);
  sim.step();
  EXPECT_FALSE(sim.net_value(q));  // held
  sim.set_input(en, true);
  sim.step();
  EXPECT_TRUE(sim.net_value(q));  // loaded
}

TEST(Simulator, IcgGatesClockAndActivity) {
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const NetId en = nl.add_net("en");
  const NetId gclk = nl.add_net("gclk");
  const NetId one = nl.add_net("one");
  const NetId q = nl.add_net("q");
  nl.mark_input(en);
  nl.add_gate(CellKind::kConst1, "c1", 0, {}, one);
  nl.add_icg("icg", 0, clk, en, gclk);
  nl.add_flop(CellKind::kDff, "f", 0, {one}, q, gclk, false);
  Simulator sim(nl);
  sim.set_clock_source(clk);

  sim.set_input(en, false);
  auto act = sim.step();
  EXPECT_FALSE(sim.net_value(q));           // no clock, no load
  EXPECT_EQ(act.total.clocked_flops, 0u);
  EXPECT_EQ(act.total.active_icgs, 0u);
  EXPECT_EQ(act.total.gated_icgs, 1u);
  EXPECT_FALSE(sim.clock_active(gclk));

  sim.set_input(en, true);
  act = sim.step();
  EXPECT_TRUE(sim.net_value(q));
  EXPECT_EQ(act.total.clocked_flops, 1u);
  EXPECT_EQ(act.total.flop_toggles, 1u);
  EXPECT_EQ(act.total.active_icgs, 1u);
  EXPECT_TRUE(sim.clock_active(gclk));
}

TEST(Simulator, ClockBufferChainActivity) {
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const NetId b1 = nl.add_net("b1");
  const NetId b2 = nl.add_net("b2");
  nl.add_clock_buffer("cb1", 0, clk, b1);
  nl.add_clock_buffer("cb2", 0, b1, b2);
  const NetId q = nl.add_net("q");
  const NetId one = nl.add_net("one");
  nl.add_gate(CellKind::kConst1, "c1", 0, {}, one);
  nl.add_flop(CellKind::kDff, "f", 0, {one}, q, b2, false);
  Simulator sim(nl);
  sim.set_clock_source(clk);
  const auto act = sim.step();
  EXPECT_EQ(act.total.active_buffers, 2u);
  EXPECT_EQ(act.total.clocked_flops, 1u);
}

TEST(Simulator, UnclockedDesignIsStatic) {
  // No clock source declared: nothing is clocked, nothing toggles.
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const NetId one = nl.add_net("one");
  nl.add_gate(CellKind::kConst1, "c1", 0, {}, one);
  const NetId q = nl.add_net("q");
  nl.add_flop(CellKind::kDff, "f", 0, {one}, q, clk, false);
  Simulator sim(nl);
  const auto act = sim.step();
  EXPECT_EQ(act.total.clocked_flops, 0u);
  EXPECT_FALSE(sim.net_value(q));
}

TEST(Simulator, CombToggleCounting) {
  // A flop toggling every cycle drives an inverter: one comb toggle per
  // cycle after the first.
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const NetId q = nl.add_net("q");
  const NetId nq = nl.add_net("nq");
  nl.add_gate(CellKind::kInv, "i", 0, {q}, nq);
  nl.add_flop(CellKind::kDff, "f", 0, {nq}, q, clk, false);
  Simulator sim(nl);
  sim.set_clock_source(clk);
  sim.step();  // q: 0 -> 1
  const auto act = sim.step();  // q: 1 -> 0, nq toggles
  EXPECT_EQ(act.total.flop_toggles, 1u);
  EXPECT_EQ(act.total.comb_toggles, 1u);
}

TEST(Simulator, PerModuleActivitySplit) {
  Netlist nl;
  const auto ma = nl.module("a");
  const auto mb = nl.module("b");
  const NetId clk = nl.add_net("clk");
  const NetId qa = nl.add_net("qa");
  const NetId qb = nl.add_net("qb");
  const NetId na = nl.add_net("na");
  const NetId nb = nl.add_net("nb");
  nl.add_gate(CellKind::kInv, "ia", ma, {qa}, na);
  nl.add_gate(CellKind::kInv, "ib", mb, {qb}, nb);
  nl.add_flop(CellKind::kDff, "fa", ma, {na}, qa, clk, false);
  nl.add_flop(CellKind::kDff, "fb", mb, {nb}, qb, clk, false);
  Simulator sim(nl);
  sim.set_clock_source(clk);
  const auto act = sim.step();
  ASSERT_GE(act.per_module.size(), 3u);
  EXPECT_EQ(act.per_module[ma].clocked_flops, 1u);
  EXPECT_EQ(act.per_module[mb].clocked_flops, 1u);
  EXPECT_EQ(act.total.clocked_flops, 2u);
}

TEST(Simulator, RunAccumulatesCycles) {
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const NetId q = nl.add_net("q");
  const NetId nq = nl.add_net("nq");
  nl.add_gate(CellKind::kInv, "i", 0, {q}, nq);
  nl.add_flop(CellKind::kDff, "f", 0, {nq}, q, clk, false);
  Simulator sim(nl);
  sim.set_clock_source(clk);
  const auto history = sim.run(10);
  EXPECT_EQ(history.size(), 10u);
  EXPECT_EQ(sim.cycle(), 10u);
  for (const auto& act : history) {
    EXPECT_EQ(act.total.clocked_flops, 1u);
    EXPECT_EQ(act.total.flop_toggles, 1u);
  }
}

}  // namespace
}  // namespace clockmark::rtl
