#include "watermark/clock_modulation.h"
#include "watermark/embedder.h"
#include "watermark/load_circuit.h"

#include <gtest/gtest.h>

#include "power/estimator.h"
#include "rtl/simulator.h"

namespace clockmark::watermark {
namespace {

wgc::WgcConfig small_wgc() {
  wgc::WgcConfig cfg;
  cfg.width = 6;  // period 63, fast gate-level runs
  return cfg;
}

TEST(LoadCircuit, RegistersToggleOnlyWhenWmarkHigh) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  LoadCircuitConfig cfg;
  cfg.wgc = small_wgc();
  cfg.load_registers = 16;
  const auto wm = build_load_circuit_watermark(nl, "wm", clk, cfg);
  rtl::Simulator sim(nl);
  sim.set_clock_source(clk);
  for (int i = 0; i < 130; ++i) {
    const bool wmark = sim.net_value(wm.wmark);
    const auto& act = sim.step();
    const auto& mod = act.per_module[nl.module("wm")];
    if (wmark) {
      // All 16 load registers toggle (1010... ring) + WGC activity.
      EXPECT_GE(mod.flop_toggles, 16u) << "cycle " << i;
      EXPECT_GE(mod.active_icgs, 1u);
    } else {
      // Only the WGC's own registers may toggle (6 stages max).
      EXPECT_LE(mod.flop_toggles, 6u) << "cycle " << i;
      EXPECT_GE(mod.gated_icgs, 1u);
    }
  }
}

TEST(LoadCircuit, AreaAccounting) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  LoadCircuitConfig cfg;
  cfg.wgc = small_wgc();
  cfg.load_registers = 576;  // the paper's 1.5 mW equivalent
  const auto wm = build_load_circuit_watermark(nl, "wm", clk, cfg);
  EXPECT_EQ(wm.total_registers, 576u + 6u);
  EXPECT_EQ(nl.register_count("wm"), 582u);
}

TEST(LoadCircuit, TooFewRegistersThrows) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  LoadCircuitConfig cfg;
  cfg.load_registers = 1;
  EXPECT_THROW(build_load_circuit_watermark(nl, "wm", clk, cfg),
               std::invalid_argument);
}

TEST(ClockModulation, PaperGeometryCounts) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  ClockModConfig cfg;  // defaults: 32x32, 12-bit WGC
  const auto wm = build_clock_modulation_watermark(nl, "wm", clk, cfg);
  EXPECT_EQ(wm.flops.size(), 1024u);
  EXPECT_EQ(wm.total_registers, 1024u + 12u);
  EXPECT_EQ(wm.wgc_registers, 12u);
  EXPECT_EQ(wm.bank.words.size(), 32u);
  EXPECT_TRUE(wm.inverters.empty());  // no switching registers by default
}

TEST(ClockModulation, InvalidConfigThrows) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  ClockModConfig zero;
  zero.words = 0;
  EXPECT_THROW(build_clock_modulation_watermark(nl, "wm", clk, zero),
               std::invalid_argument);
  ClockModConfig too_many;
  too_many.switching_registers = 1025;
  EXPECT_THROW(build_clock_modulation_watermark(nl, "wm", clk, too_many),
               std::invalid_argument);
}

TEST(ClockModulation, HoldRegistersNeverToggle) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  ClockModConfig cfg;
  cfg.wgc = small_wgc();
  cfg.words = 2;
  cfg.bits_per_word = 8;
  cfg.switching_registers = 0;
  build_clock_modulation_watermark(nl, "wm", clk, cfg);
  rtl::Simulator sim(nl);
  sim.set_clock_source(clk);
  for (int i = 0; i < 130; ++i) {
    const auto& act = sim.step();
    // D = Q: bank flops are clocked but never change value; WGC flops
    // are the only togglers (<= 6).
    EXPECT_LE(act.total.flop_toggles, 6u);
  }
}

TEST(ClockModulation, SwitchingRegistersToggleWhenClocked) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  ClockModConfig cfg;
  cfg.wgc = small_wgc();
  cfg.words = 2;
  cfg.bits_per_word = 8;
  cfg.switching_registers = 8;
  const auto wm = build_clock_modulation_watermark(nl, "wm", clk, cfg);
  EXPECT_EQ(wm.inverters.size(), 8u);
  rtl::Simulator sim(nl);
  sim.set_clock_source(clk);
  for (int i = 0; i < 130; ++i) {
    const bool wmark = sim.net_value(wm.wmark);
    const auto& act = sim.step();
    if (wmark) {
      EXPECT_GE(act.total.flop_toggles, 8u) << "cycle " << i;
    }
  }
}

TEST(ClockModulation, ClockBuffersFollowWmark) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  ClockModConfig cfg;
  cfg.wgc = small_wgc();
  cfg.words = 4;
  cfg.bits_per_word = 8;
  const auto wm = build_clock_modulation_watermark(nl, "wm", clk, cfg);
  rtl::Simulator sim(nl);
  sim.set_clock_source(clk);
  for (int i = 0; i < 130; ++i) {
    const bool wmark = sim.net_value(wm.wmark);
    const auto& act = sim.step();
    if (wmark) {
      // 32 bank leaves + 6 WGC leaves all switch.
      EXPECT_EQ(act.total.active_buffers, 38u) << "cycle " << i;
      EXPECT_EQ(act.total.active_icgs, 4u);
    } else {
      // Only the WGC's own clock leaves switch.
      EXPECT_EQ(act.total.active_buffers, 6u) << "cycle " << i;
      EXPECT_EQ(act.total.gated_icgs, 4u);
    }
  }
}

TEST(Characterization, MatchesTableOneAmplitude) {
  // Full paper geometry: active power ~1.51 mW above idle, entirely from
  // clock buffers.
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  ClockModConfig cfg;  // 32x32, 12-bit WGC, no switching registers
  const auto wm = build_clock_modulation_watermark(nl, "wm", clk, cfg);
  const auto ch = characterize_watermark(nl, clk, wm.wmark, "wm", 4095,
                                         power::TechLibrary{});
  const double amplitude = ch.mean_active_w - ch.mean_idle_w;
  // 1024 buffers + 32 ICGs: 1.51 mW + 32 * (icg_active - icg_idle).
  EXPECT_NEAR(amplitude, 1.51e-3 + 32 * (120e-15 - 12e-15) * 10e6,
              0.05e-3);
  // Leakage ~0.4 uW for the block (Table I static column).
  EXPECT_NEAR(ch.leakage_w, 0.41e-6, 0.05e-6);
}

TEST(Characterization, BitsMatchBehaviouralSequence) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  ClockModConfig cfg;
  cfg.wgc = small_wgc();
  cfg.words = 1;
  cfg.bits_per_word = 4;
  const auto wm = build_clock_modulation_watermark(nl, "wm", clk, cfg);
  const auto ch = characterize_watermark(nl, clk, wm.wmark, "wm", 63,
                                         power::TechLibrary{});
  wgc::WgcSequence seq(cfg.wgc);
  const auto expected = seq.generate(63);
  EXPECT_EQ(ch.wmark_bits, expected);
  // Power is bimodal: every active cycle costs more than every idle one.
  double min_active = 1e9, max_idle = 0.0;
  for (std::size_t i = 0; i < 63; ++i) {
    if (ch.wmark_bits[i]) {
      min_active = std::min(min_active, ch.power_w[i]);
    } else {
      max_idle = std::max(max_idle, ch.power_w[i]);
    }
  }
  EXPECT_GT(min_active, max_idle);
}

TEST(Characterization, TilingWrapsPhase) {
  WatermarkCharacterization ch;
  ch.period = 4;
  ch.power_w = {1.0, 2.0, 3.0, 4.0};
  ch.wmark_bits = {true, false, true, false};
  const auto tiled = tile_watermark_power(ch, 10, 2);
  const std::vector<double> expected = {3, 4, 1, 2, 3, 4, 1, 2, 3, 4};
  EXPECT_EQ(tiled, expected);
  const auto bits = tile_wmark_bits(ch, 5, 1);
  const std::vector<bool> eb = {false, true, false, true, false};
  EXPECT_EQ(bits, eb);
}

TEST(Characterization, ZeroPeriodThrows) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  EXPECT_THROW(characterize_watermark(nl, clk, clk, "", 0,
                                      power::TechLibrary{}),
               std::invalid_argument);
}

TEST(DemoIp, BuildsAndTicksWithGatedGroups) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  DemoIpConfig cfg;
  cfg.groups = 4;
  cfg.registers_per_group = 16;
  const auto ip = build_demo_ip_block(nl, "ip", clk, cfg);
  EXPECT_EQ(ip.icgs.size(), 4u);
  EXPECT_EQ(ip.ctrl_nets.size(), 4u);
  rtl::Simulator sim(nl);
  sim.set_clock_source(clk);
  // Functional enables must vary over time (the counter decodes).
  std::size_t active_seen = 0, gated_seen = 0;
  for (int i = 0; i < 32; ++i) {
    const auto& act = sim.step();
    active_seen += act.total.active_icgs;
    gated_seen += act.total.gated_icgs;
  }
  EXPECT_GT(active_seen, 0u);
  EXPECT_GT(gated_seen, 0u);
}

TEST(Embedder, RewiresEnablesThroughAnd) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  const auto ip = build_demo_ip_block(nl, "ip", clk, {2, 8});
  const auto embed = embed_clock_modulation(nl, "wm", clk, small_wgc(),
                                            ip.icgs);
  EXPECT_EQ(embed.and_gates.size(), 2u);
  // Each ICG's enable is now the AND output, not the original ctrl net.
  for (std::size_t i = 0; i < ip.icgs.size(); ++i) {
    const auto& icg = nl.cell(ip.icgs[i]);
    EXPECT_EQ(icg.inputs[0], nl.cell(embed.and_gates[i]).output);
  }
}

TEST(Embedder, WmarkGatesFunctionalClocks) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  const auto ip = build_demo_ip_block(nl, "ip", clk, {2, 8});
  embed_clock_modulation(nl, "wm", clk, small_wgc(), ip.icgs);

  // Compare against an unmodified twin: whenever WMARK = 0, the embedded
  // design must clock strictly fewer flops.
  rtl::Netlist ref;
  const rtl::NetId rclk = ref.add_net("clk");
  build_demo_ip_block(ref, "ip", rclk, {2, 8});

  rtl::Simulator sim(nl);
  sim.set_clock_source(clk);
  rtl::Simulator rsim(ref);
  rsim.set_clock_source(rclk);
  wgc::WgcSequence seq(small_wgc());
  bool saw_gating = false;
  for (int i = 0; i < 63; ++i) {
    const bool wmark = seq.step();
    const auto& act = sim.step();
    const auto& ract = rsim.step();
    if (!wmark && ract.total.clocked_flops > 6) {
      // Embedded design: only the 3-bit counter and the 6 WGC stages may
      // clock — every functional group is cut off by WMARK.
      EXPECT_LE(act.total.clocked_flops, 9u) << "cycle " << i;
      saw_gating = true;
    }
  }
  EXPECT_TRUE(saw_gating);
}

TEST(Embedder, NoTargetsThrows) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  EXPECT_THROW(
      embed_clock_modulation(nl, "wm", clk, small_wgc(), {}),
      std::invalid_argument);
}

TEST(Embedder, NonIcgTargetThrows) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  const rtl::NetId a = nl.add_net("a");
  const rtl::NetId b = nl.add_net("b");
  const rtl::CellId inv = nl.add_gate(rtl::CellKind::kInv, "i", 0, {a}, b);
  const std::vector<rtl::CellId> targets = {inv};
  EXPECT_THROW(embed_clock_modulation(nl, "wm", clk, small_wgc(), targets),
               std::invalid_argument);
}

}  // namespace
}  // namespace clockmark::watermark
