// StreamPipeline end to end: producer/queue/detector wiring, early-stop
// cancellation of the producer, failure propagation via queue poisoning,
// and the trace export / replay loop (write_trace_* -> ReplaySource).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "cpa/detector.h"
#include "measure/trace_io.h"
#include "runtime/executor.h"
#include "sim/scenario.h"
#include "stream/pipeline.h"

namespace {

using namespace clockmark;
using stream::CallbackSource;
using stream::Chunk;
using stream::StreamPipeline;
using stream::StreamPipelineConfig;

sim::ScenarioConfig fast_config(sim::ChipModel chip,
                                std::size_t cycles = 20000) {
  sim::ScenarioConfig cfg = chip == sim::ChipModel::kChip1
                                ? sim::chip1_default()
                                : sim::chip2_default();
  cfg.trace_cycles = cycles;
  cfg.acquisition.scope.noise_v_rms = 2e-3;
  cfg.acquisition.probe.noise_v_rms = 0.5e-3;
  return cfg;
}

/// CallbackSource replaying pre-chopped chunks (the test seam).
class ChunkReplay {
 public:
  explicit ChunkReplay(std::vector<Chunk> chunks)
      : chunks_(std::move(chunks)) {}
  std::optional<Chunk> operator()() {
    if (next_ >= chunks_.size()) return std::nullopt;
    return chunks_[next_++];
  }

 private:
  std::vector<Chunk> chunks_;
  std::size_t next_ = 0;
};

TEST(StreamPipeline, FullRunMatchesBatchDetect) {
  const sim::Scenario sc(fast_config(sim::ChipModel::kChip1));
  const auto r = sc.run(0);
  const auto& y = r.acquisition.per_cycle_power_w;
  const auto batch = cpa::Detector().detect(y, r.pattern);

  StreamPipelineConfig cfg;
  cfg.detector.early_stop = false;
  CallbackSource source(ChunkReplay(stream::chop(y, 2048)), y.size());
  runtime::Executor executor(4);
  const auto report =
      StreamPipeline(cfg).run(source, r.pattern, &executor);

  EXPECT_FALSE(report.source_failed);
  EXPECT_EQ(report.chunks_produced, report.chunks_consumed);
  EXPECT_EQ(report.decision.cycles, y.size());
  EXPECT_EQ(report.decision.result.spectrum.rho, batch.spectrum.rho);
  EXPECT_EQ(report.decision.detected, batch.detected);
  EXPECT_EQ(report.queue.pushes, report.chunks_consumed);
  EXPECT_GE(report.queue.high_water, 1u);
  EXPECT_GT(report.peak_buffered_bytes, 0u);
}

TEST(StreamPipeline, EarlyStopHaltsProducer) {
  // A long, clean trace: the decision fires mid-stream and the producer
  // must stop early instead of pushing every chunk.
  const sim::Scenario sc(fast_config(sim::ChipModel::kChip1, 32768));
  const auto r = sc.run(0);
  const auto& y = r.acquisition.per_cycle_power_w;

  StreamPipelineConfig cfg;
  cfg.queue_capacity = 2;
  CallbackSource source(ChunkReplay(stream::chop(y, 1024)), y.size());
  const auto report = StreamPipeline(cfg).run(source, r.pattern);

  EXPECT_TRUE(report.decision.decided);
  EXPECT_TRUE(report.decision.detected);
  EXPECT_LE(report.decision.decision_cycles, y.size() / 2);
  // Not every chunk was consumed — acquisition genuinely ended early.
  EXPECT_LT(report.chunks_consumed, y.size() / 1024);
}

TEST(StreamPipeline, SourceFailurePoisonsInsteadOfCleanEnd) {
  int calls = 0;
  CallbackSource source([&]() -> std::optional<Chunk> {
    if (++calls == 3) throw std::runtime_error("probe detached");
    Chunk c;
    c.index = static_cast<std::size_t>(calls - 1);
    c.start_cycle = static_cast<std::size_t>(calls - 1) * 64;
    c.values.assign(64, 1e-3);
    return c;
  });
  StreamPipelineConfig cfg;
  const auto report =
      StreamPipeline(cfg).run(source, std::vector<double>(63, 1.0));
  EXPECT_TRUE(report.source_failed);
  EXPECT_NE(report.error.find("probe detached"), std::string::npos);
  EXPECT_FALSE(report.decision.detected);
}

TEST(TraceIo, CsvRoundTripThroughReplaySource) {
  const std::vector<double> y = {1.25e-3, -2.0e-3, 3.75e-3, 0.0,
                                 5.5e-4,  6.25e-5, 7.0e-3};
  const std::string path =
      (std::filesystem::temp_directory_path() / "cm_trace_rt.csv").string();
  measure::write_trace_csv(path, y);

  stream::ReplaySource source(path, /*chunk_cycles=*/3);
  std::vector<double> back;
  while (auto c = source.next()) {
    EXPECT_EQ(c->start_cycle, back.size());
    back.insert(back.end(), c->values.begin(), c->values.end());
  }
  EXPECT_EQ(back, y);  // %.17g survives the round trip exactly
  std::remove(path.c_str());
}

TEST(TraceIo, BinaryRoundTripThroughReplaySource) {
  std::vector<double> y(1000);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = 1e-3 * static_cast<double>(i) / 7.0;
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "cm_trace_rt.bin").string();
  measure::write_trace_binary(path, y);

  stream::ReplaySource source(path, 128);
  EXPECT_EQ(source.total_cycles(), y.size());  // header carries the count
  std::vector<double> back;
  while (auto c = source.next()) {
    back.insert(back.end(), c->values.begin(), c->values.end());
  }
  EXPECT_EQ(back, y);
  std::remove(path.c_str());
}

TEST(TraceIo, ReplayedScenarioTraceDetectsLikeBatch) {
  // Export a batch trace, stream it back from disk through the full
  // pipeline: the decision equals the batch detector's.
  const sim::Scenario sc(fast_config(sim::ChipModel::kChip1));
  const auto r = sc.run(0);
  const auto& y = r.acquisition.per_cycle_power_w;
  const auto batch = cpa::Detector().detect(y, r.pattern);

  const std::string path =
      (std::filesystem::temp_directory_path() / "cm_trace_replay.bin")
          .string();
  measure::write_trace_binary(path, y);

  stream::ReplaySource source(path, 4096);
  StreamPipelineConfig cfg;
  cfg.detector.early_stop = false;
  const auto report = StreamPipeline(cfg).run(source, r.pattern);
  EXPECT_EQ(report.decision.result.spectrum.rho, batch.spectrum.rho);
  EXPECT_EQ(report.decision.detected, batch.detected);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(measure::TraceFileReader("/nonexistent/cm_trace.bin"),
               std::runtime_error);
}

}  // namespace
