#include "cpa/confidence.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace clockmark::cpa {
namespace {

TEST(NormalTail, KnownValues) {
  EXPECT_NEAR(normal_tail(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_tail(1.96), 0.025, 1e-3);
  EXPECT_NEAR(normal_tail(3.0), 1.35e-3, 1e-4);
  EXPECT_LT(normal_tail(6.0), 1e-8);
  EXPECT_NEAR(normal_tail(-1.0) + normal_tail(1.0), 1.0, 1e-12);
}

TEST(FalsePositive, MonotoneInZ) {
  double prev = 1.0;
  for (double z = 0.0; z < 8.0; z += 0.5) {
    const double p = false_positive_probability(z, 4095);
    EXPECT_LE(p, prev + 1e-15);
    prev = p;
  }
}

TEST(FalsePositive, GrowsWithRotations) {
  EXPECT_GT(false_positive_probability(4.0, 4095),
            false_positive_probability(4.0, 255));
}

TEST(FalsePositive, PaperScaleThreshold) {
  // At the paper's P = 4095: z = 4 is not yet significant (noise peaks
  // that high), z = 5.5 — the detector default — is.
  EXPECT_GT(false_positive_probability(4.0, 4095), 0.1);
  EXPECT_LT(false_positive_probability(5.5, 4095), 1e-3);
}

TEST(FalsePositive, EdgeCases) {
  EXPECT_EQ(false_positive_probability(5.0, 0), 0.0);
  EXPECT_EQ(false_positive_probability(0.0, 100), 1.0);  // p >= 1 clamps
}

TEST(ExpectedNoisePeak, MatchesSqrtLog) {
  EXPECT_NEAR(expected_noise_peak_z(4095),
              std::sqrt(2.0 * std::log(4095.0)), 1e-12);
  EXPECT_EQ(expected_noise_peak_z(1), 0.0);
}

TEST(ExpectedNoisePeak, EmpiricalAgreement) {
  // Max |z| of 4095 standard normal draws lands near sqrt(2 ln P).
  util::Pcg32 rng(3);
  double acc = 0.0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    double peak = 0.0;
    for (int i = 0; i < 4095; ++i) {
      peak = std::max(peak, std::fabs(rng.gaussian()));
    }
    acc += peak;
  }
  EXPECT_NEAR(acc / trials, expected_noise_peak_z(4095), 0.35);
}

TEST(ZThreshold, InvertsFalsePositive) {
  for (const double alpha : {0.05, 0.01, 1e-4}) {
    const double z = z_threshold_for_alpha(alpha, 4095);
    EXPECT_LE(false_positive_probability(z, 4095), alpha * 1.01);
    EXPECT_GE(false_positive_probability(z - 0.05, 4095), alpha * 0.99);
  }
}

TEST(ZThreshold, DegenerateInputs) {
  EXPECT_EQ(z_threshold_for_alpha(0.0, 4095), 0.0);
  EXPECT_EQ(z_threshold_for_alpha(0.5, 0), 0.0);
}

TEST(DetectionConfidence, FromSpectrum) {
  SpreadSpectrum ss;
  ss.rho.assign(4095, 0.0);
  ss.noise_std = 0.0018;
  ss.peak_z = 10.0;
  EXPECT_GT(detection_confidence(ss), 0.999999);
  ss.peak_z = 2.0;
  EXPECT_LT(detection_confidence(ss), 0.01);
  SpreadSpectrum empty;
  EXPECT_EQ(detection_confidence(empty), 0.0);
}

}  // namespace
}  // namespace clockmark::cpa
