#include "soc/chip1.h"
#include "soc/chip2.h"

#include <gtest/gtest.h>

#include "cpu/programs.h"
#include "soc/idle_core.h"
#include "util/stats.h"

namespace clockmark::soc {
namespace {

Chip1Config m0_config(const std::string& program) {
  Chip1Config cfg;
  cfg.program = program;
  return cfg;
}

TEST(CpuPowerModel, EnergyOrdering) {
  const CpuPowerModel m;
  cpu::CpuActivity active;
  active.active = true;
  active.alu_used = true;
  cpu::CpuActivity sleeping;
  sleeping.sleeping = true;
  cpu::CpuActivity halted;
  halted.halted = true;
  EXPECT_GT(m.cycle_energy_j(active), m.cycle_energy_j(sleeping));
  EXPECT_GT(m.cycle_energy_j(sleeping), m.cycle_energy_j(halted));
}

TEST(CpuPowerModel, UnitsAddEnergy) {
  const CpuPowerModel m;
  cpu::CpuActivity base;
  base.active = true;
  cpu::CpuActivity mul = base;
  mul.multiplier_used = true;
  cpu::CpuActivity mem = base;
  mem.mem_read = true;
  EXPECT_GT(m.cycle_energy_j(mul), m.cycle_energy_j(base));
  EXPECT_GT(m.cycle_energy_j(mem), m.cycle_energy_j(mul));
}

TEST(Chip1Soc, RunsDhrystoneAndProducesTrace) {
  Chip1Soc chip(m0_config(cpu::dhrystone_like_source()));
  const auto trace = chip.run(5000);
  EXPECT_EQ(trace.cycles(), 5000u);
  EXPECT_FALSE(chip.core().faulted());
  EXPECT_FALSE(chip.core().halted());  // endless benchmark
  // M0-class SoC at 10 MHz: around a couple of milliwatts.
  EXPECT_GT(trace.average_w(), 0.5e-3);
  EXPECT_LT(trace.average_w(), 5e-3);
}

TEST(Chip1Soc, PowerVariesCycleToCycle) {
  Chip1Soc chip(m0_config(cpu::dhrystone_like_source()));
  const auto trace = chip.run(2000);
  EXPECT_GT(util::stddev(trace.span()), 0.0);
}

TEST(Chip1Soc, DeterministicAcrossInstances) {
  Chip1Soc a(m0_config(cpu::dhrystone_like_source()));
  Chip1Soc b(m0_config(cpu::dhrystone_like_source()));
  const auto ta = a.run(1000);
  const auto tb = b.run(1000);
  EXPECT_EQ(ta.values(), tb.values());
}

TEST(Chip1Soc, UartProgramProducesOutput) {
  Chip1Soc chip(m0_config(cpu::hello_uart_source()));
  chip.run(500);
  EXPECT_EQ(chip.uart().output(), "HELLO\n");
  EXPECT_TRUE(chip.core().halted());
}

TEST(Chip1Soc, HaltedCoreBurnsLittlePower) {
  Chip1Soc chip(m0_config("    halt\n"));
  chip.run(10);
  const auto trace = chip.run(100);
  // Only SoC leakage + halt residue left.
  EXPECT_LT(trace.average_w(), 0.5e-3);
}

TEST(Chip1Soc, BadProgramThrowsAtConstruction) {
  EXPECT_THROW(Chip1Soc(m0_config("    bogus\n")), cpu::AssemblyError);
}

TEST(IdleCore, MeanPowerMatchesConfiguration) {
  IdleCoreConfig cfg;
  const power::TechLibrary lib;
  IdleCore core(cfg, lib, util::Pcg32(1));
  // Sample average should approach the analytic mean (leakage excluded
  // from mean_power_w, included in step()).
  util::RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(core.step());
  EXPECT_NEAR(rs.mean(), core.mean_power_w() + core.leakage_w(),
              0.05 * rs.mean());
}

TEST(IdleCore, MaintenanceSweepsTouchTheCache) {
  IdleCoreConfig cfg;
  const power::TechLibrary lib;
  IdleCore core(cfg, lib, util::Pcg32(3));
  for (int i = 0; i < 5000; ++i) core.step();
  const auto& cs = core.cache_stats();
  EXPECT_GT(cs.hits + cs.misses, 100u);
  // The cyclic sweep re-touches its lines; random snoops keep evicting
  // some, so the steady-state hit rate is meaningful but not near 1.
  EXPECT_GT(cs.hit_rate(), 0.2);
  EXPECT_LT(cs.hit_rate(), 1.0);
}

TEST(IdleCore, ProducesCycleNoise) {
  IdleCoreConfig cfg;
  const power::TechLibrary lib;
  IdleCore core(cfg, lib, util::Pcg32(2));
  util::RunningStats rs;
  for (int i = 0; i < 5000; ++i) rs.add(core.step());
  EXPECT_GT(rs.stddev(), 0.0);
}

TEST(Chip2Soc, BackgroundExceedsChip1) {
  Chip1Soc c1(m0_config(cpu::dhrystone_like_source()));
  Chip2Config cfg2;
  cfg2.m0_soc = m0_config(cpu::dhrystone_like_source());
  Chip2Soc c2(cfg2);
  const auto t1 = c1.run(2000);
  const auto t2 = c2.run(2000);
  // Two clocked A5s + fabric dominate: chip II background is much larger.
  EXPECT_GT(t2.average_w(), 3.0 * t1.average_w());
}

TEST(Chip2Soc, NoiseSeedChangesTrace) {
  Chip2Config a;
  a.m0_soc = m0_config(cpu::dhrystone_like_source());
  a.noise_seed = 1;
  Chip2Config b = a;
  b.noise_seed = 2;
  Chip2Soc ca(a), cb(b);
  EXPECT_NE(ca.run(500).values(), cb.run(500).values());
}

TEST(Chip2Soc, SameSeedReproduces) {
  Chip2Config cfg;
  cfg.m0_soc = m0_config(cpu::dhrystone_like_source());
  cfg.noise_seed = 42;
  Chip2Soc a(cfg), b(cfg);
  EXPECT_EQ(a.run(500).values(), b.run(500).values());
}

}  // namespace
}  // namespace clockmark::soc
