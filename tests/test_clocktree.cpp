#include "clocktree/builder.h"
#include "clocktree/tree.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>

#include "rtl/simulator.h"

namespace clockmark::clocktree {
namespace {

using rtl::CellKind;
using rtl::Netlist;
using rtl::NetId;

// GCC 12 miscounts the SSO buffer when `"q" + std::to_string(i)` is fully
// inlined and reports a bogus -Wrestrict overlap out of char_traits.h
// (GCC bug 105329). Appending onto a named string never goes through the
// rvalue operator+ that trips the diagnostic, so the warning set stays on.
std::string numbered(const char* prefix, std::size_t i) {
  std::string name(prefix);
  name += std::to_string(i);
  return name;
}

// Verifies no clock cell output drives more than max_fanout loads.
void expect_fanout_bounded(const Netlist& nl, unsigned max_fanout) {
  std::map<NetId, std::size_t> load_count;
  for (std::size_t i = 0; i < nl.cell_count(); ++i) {
    const auto& c = nl.cell(static_cast<rtl::CellId>(i));
    if (c.clock != rtl::kInvalidNet) ++load_count[c.clock];
    for (const NetId in : c.inputs) ++load_count[in];
  }
  for (std::size_t i = 0; i < nl.cell_count(); ++i) {
    const auto& c = nl.cell(static_cast<rtl::CellId>(i));
    if (rtl::is_clock_cell(c.kind) && c.output != rtl::kInvalidNet) {
      EXPECT_LE(load_count[c.output], max_fanout)
          << "cell " << c.name << " overloads its output";
    }
  }
}

class TreeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeSizes, OneLeafPerSink) {
  const std::size_t sinks = GetParam();
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const auto tree = build_clock_tree(nl, 0, clk, sinks);
  EXPECT_EQ(tree.leaf_nets.size(), sinks);
  EXPECT_GE(tree.buffers.size(), sinks);  // at least the leaf buffers
  expect_fanout_bounded(nl, 16);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeSizes,
                         ::testing::Values(1, 2, 15, 16, 17, 32, 100, 1024));

TEST(ClockTree, ZeroSinksEmptyTree) {
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const auto tree = build_clock_tree(nl, 0, clk, 0);
  EXPECT_TRUE(tree.leaf_nets.empty());
  EXPECT_TRUE(tree.buffers.empty());
}

TEST(ClockTree, BadFanoutThrows) {
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  ClockTreeOptions opt;
  opt.max_fanout = 1;
  EXPECT_THROW(build_clock_tree(nl, 0, clk, 4, opt), std::invalid_argument);
}

TEST(ClockTree, NoLeafBuffersOption) {
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  ClockTreeOptions opt;
  opt.leaf_buffer_per_sink = false;
  const auto tree = build_clock_tree(nl, 0, clk, 8, opt);
  EXPECT_EQ(tree.leaf_nets.size(), 8u);
  EXPECT_TRUE(tree.buffers.empty());  // 8 <= fanout: root drives directly
  for (const NetId leaf : tree.leaf_nets) EXPECT_EQ(leaf, clk);
}

TEST(ClockTree, ClockPropagatesToAllLeaves) {
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const auto tree = build_clock_tree(nl, 0, clk, 40);
  // Attach a toggling flop to every leaf; all must clock each cycle.
  std::vector<NetId> qs;
  for (std::size_t i = 0; i < tree.leaf_nets.size(); ++i) {
    const NetId q = nl.add_net(numbered("q", i));
    const NetId nq = nl.add_net(numbered("nq", i));
    nl.add_gate(CellKind::kInv, numbered("i", i), 0, {q}, nq);
    nl.add_flop(CellKind::kDff, numbered("f", i), 0, {nq}, q,
                tree.leaf_nets[i], false);
    qs.push_back(q);
  }
  rtl::Simulator sim(nl);
  sim.set_clock_source(clk);
  const auto act = sim.step();
  EXPECT_EQ(act.total.clocked_flops, 40u);
  EXPECT_EQ(act.total.active_buffers, tree.buffers.size());
  for (const NetId q : qs) EXPECT_TRUE(sim.net_value(q));
}

TEST(GatedGroup, IcgControlsSubtree) {
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const NetId en = nl.add_net("en");
  nl.mark_input(en);
  const auto group = build_gated_group(nl, 0, clk, en, 8, "grp");
  // Put a toggler on one leaf.
  const NetId q = nl.add_net("q");
  const NetId nq = nl.add_net("nq");
  nl.add_gate(CellKind::kInv, "i", 0, {q}, nq);
  nl.add_flop(CellKind::kDff, "f", 0, {nq}, q, group.tree.leaf_nets[0],
              false);
  rtl::Simulator sim(nl);
  sim.set_clock_source(clk);
  sim.set_input(en, false);
  auto act = sim.step();
  EXPECT_EQ(act.total.clocked_flops, 0u);
  EXPECT_EQ(act.total.active_buffers, 0u);  // whole subtree silent
  sim.set_input(en, true);
  act = sim.step();
  EXPECT_EQ(act.total.clocked_flops, 1u);
  EXPECT_EQ(act.total.active_buffers, group.tree.buffers.size());
}

TEST(BankClocking, PaperGeometry32x32) {
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const NetId en = nl.add_net("en");
  BankClockingOptions opt;
  opt.words = 32;
  opt.bits_per_word = 32;
  opt.tree.max_fanout = 32;
  const auto bank = build_bank_clocking(nl, 0, clk, en, "bank", opt);
  EXPECT_EQ(bank.words.size(), 32u);
  EXPECT_EQ(bank.leaf_nets.size(), 32u);
  std::size_t leaves = 0;
  for (const auto& word : bank.leaf_nets) leaves += word.size();
  EXPECT_EQ(leaves, 1024u);
  // 32 ICGs exist.
  const auto census = nl.census();
  EXPECT_EQ(census.at(CellKind::kIcg), 32u);
  // Exactly one leaf clock buffer per register slot.
  EXPECT_EQ(census.at(CellKind::kClockBuffer), 1024u + bank.spine_buffers.size());
}

TEST(BankClocking, InvalidGeometryThrows) {
  Netlist nl;
  const NetId clk = nl.add_net("clk");
  const NetId en = nl.add_net("en");
  EXPECT_THROW(build_bank_clocking(nl, 0, clk, en, "b",
                                   BankClockingOptions{0, 32, {}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace clockmark::clocktree
