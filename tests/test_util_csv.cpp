#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace clockmark::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "cm_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_);
    w.header({"a", "b", "c"});
    w.row({1.0, 2.5, 3.0});
    w.row({4.0, 5.0, 6.0});
  }
  EXPECT_EQ(slurp(path_), "a,b,c\n1,2.5,3\n4,5,6\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter w(path_);
    w.text_row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  }
  EXPECT_EQ(slurp(path_),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST_F(CsvTest, VectorOverloads) {
  {
    CsvWriter w(path_);
    w.header(std::vector<std::string>{"x", "y"});
    w.row(std::vector<double>{1.5, -2.25});
  }
  EXPECT_EQ(slurp(path_), "x,y\n1.5,-2.25\n");
}

TEST(CsvWriterErrors, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"),
               std::runtime_error);
}

TEST_F(CsvTest, ReadSeriesRoundTrip) {
  {
    std::ofstream out(path_);
    out << "# header comment\n1.5\n2.5, extra, columns\n\n-3e-3 # note\n";
  }
  const auto v = read_series(path_);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.5);
  EXPECT_DOUBLE_EQ(v[1], 2.5);
  EXPECT_DOUBLE_EQ(v[2], -3e-3);
}

TEST(ReadSeries, MissingFileThrows) {
  EXPECT_THROW(read_series("/nonexistent_xyz/a.csv"), std::runtime_error);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(1.23456789, 3), "1.23");
  EXPECT_EQ(format_double(1476e-9, 4), "1.476e-06");
}

}  // namespace
}  // namespace clockmark::util
