// Scenario memoization: run() (cached deterministic traces, shared
// model pattern, tiled-watermark cache) must be bit-identical to
// run_uncached() — the planless reference that recomputes everything —
// for both chips, pinned and unpinned phases, and under concurrent
// access (TSan covers this suite in scripts/tier1.sh).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sim/scenario.h"

namespace clockmark::sim {
namespace {

ScenarioConfig fast_config(ChipModel chip) {
  ScenarioConfig cfg =
      chip == ChipModel::kChip1 ? chip1_default() : chip2_default();
  cfg.trace_cycles = 20000;
  cfg.acquisition.scope.noise_v_rms = 2e-3;
  cfg.acquisition.probe.noise_v_rms = 0.5e-3;
  return cfg;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "index " << i;
  }
}

void expect_results_equal(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.true_rotation, b.true_rotation);
  expect_bitwise_equal(a.pattern, b.pattern);
  expect_bitwise_equal(a.background_power.values(),
                       b.background_power.values());
  expect_bitwise_equal(a.watermark_power.values(),
                       b.watermark_power.values());
  expect_bitwise_equal(a.total_power.values(), b.total_power.values());
  expect_bitwise_equal(a.acquisition.per_cycle_power_w,
                       b.acquisition.per_cycle_power_w);
  EXPECT_EQ(a.background_power.clock_hz(), b.background_power.clock_hz());
}

TEST(ScenarioMemo, RunMatchesUncachedChip1) {
  Scenario sc(fast_config(ChipModel::kChip1));
  for (const std::size_t rep : {0u, 1u, 7u}) {
    expect_results_equal(sc.run(rep), sc.run_uncached(rep));
  }
}

TEST(ScenarioMemo, RunMatchesUncachedChip2) {
  Scenario sc(fast_config(ChipModel::kChip2));
  for (const std::size_t rep : {0u, 1u, 7u}) {
    expect_results_equal(sc.run(rep), sc.run_uncached(rep));
  }
}

TEST(ScenarioMemo, RunMatchesFreshScenario) {
  // The cache never leaks state between repetitions: a warm Scenario
  // must reproduce what a cold one computes.
  const auto cfg = fast_config(ChipModel::kChip1);
  Scenario warm(cfg);
  (void)warm.run(0);
  (void)warm.run(1);
  Scenario cold(cfg);
  expect_results_equal(warm.run(2), cold.run_uncached(2));
}

TEST(ScenarioMemo, UnpinnedPhaseMatchesUncached) {
  // Unpinned phase draws a fresh rotation per repetition, exercising
  // the per-rotation tiled-watermark cache (and its size cap).
  auto cfg = fast_config(ChipModel::kChip1);
  cfg.phase_offset.reset();
  Scenario sc(cfg);
  for (std::size_t rep = 0; rep < 10; ++rep) {
    expect_results_equal(sc.run(rep), sc.run_uncached(rep));
  }
}

TEST(ScenarioMemo, InactiveWatermarkMatchesUncached) {
  auto cfg = fast_config(ChipModel::kChip2);
  cfg.watermark_active = false;
  Scenario sc(cfg);
  expect_results_equal(sc.run(0), sc.run_uncached(0));
}

TEST(ScenarioMemo, SynthesizeMatchesRunWithoutAcquisition) {
  Scenario sc(fast_config(ChipModel::kChip1));
  const auto full = sc.run(3);
  const auto syn = sc.synthesize(3);
  EXPECT_EQ(syn.true_rotation, full.true_rotation);
  expect_bitwise_equal(syn.total_power.values(), full.total_power.values());
  EXPECT_TRUE(syn.acquisition.per_cycle_power_w.empty());
  const auto syn_ref = sc.synthesize_uncached(3);
  expect_bitwise_equal(syn.total_power.values(),
                       syn_ref.total_power.values());
}

TEST(ScenarioMemo, ConcurrentRunsHitCacheConsistently) {
  // First touch of the cache races between threads (call_once for the
  // background, mutex + compute-outside-lock for the tiled watermark);
  // every repetition must still match the serial uncached reference.
  Scenario sc(fast_config(ChipModel::kChip2));
  constexpr std::size_t kThreads = 4;
  std::vector<ScenarioResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { results[t] = sc.run(t); });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    expect_results_equal(results[t], sc.run_uncached(t));
  }
}

}  // namespace
}  // namespace clockmark::sim
