#include "measure/trigger.h"

#include <gtest/gtest.h>

#include "measure/acquisition.h"
#include "power/trace.h"
#include "power/waveform.h"
#include "util/rng.h"

namespace clockmark::measure {
namespace {

/// A waveform with pulse-shaped cycles starting at the given phase.
std::vector<double> shifted_waveform(std::size_t cycles, std::size_t spc,
                                     std::size_t phase, double noise,
                                     std::uint64_t seed) {
  power::WaveformOptions opt;
  opt.samples_per_cycle = spc;
  const power::PowerTrace trace(
      std::vector<double>(cycles, 2e-3), 10e6);
  auto wave = power::expand_to_current_waveform(trace, 1.2, opt);
  // Rotate so the rising edge appears at `phase` within each window.
  std::vector<double> shifted(wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) {
    shifted[(i + phase) % wave.size()] = wave[i];
  }
  util::Pcg32 rng(seed);
  for (auto& v : shifted) v += rng.gaussian(0.0, noise);
  return shifted;
}

class TriggerPhases : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TriggerPhases, RecoversKnownPhase) {
  const std::size_t phase = GetParam();
  const auto wave = shifted_waveform(200, 50, phase, 0.0, 1);
  EXPECT_EQ(estimate_trigger_phase(wave, 50), phase % 50);
}

INSTANTIATE_TEST_SUITE_P(Phases, TriggerPhases,
                         ::testing::Values(0u, 1u, 7u, 25u, 49u));

TEST(Trigger, RobustToModerateNoise) {
  const auto wave = shifted_waveform(500, 50, 13, 2e-4, 7);
  const auto est = estimate_trigger_phase(wave, 50);
  EXPECT_EQ(est, 13u);
}

TEST(Trigger, AlignRemovesPhase) {
  const auto wave = shifted_waveform(100, 50, 20, 0.0, 3);
  const auto aligned = auto_align(wave, 50);
  // After alignment the rising edge sits at phase 0.
  EXPECT_EQ(estimate_trigger_phase(aligned, 50), 0u);
  EXPECT_EQ(aligned.size(), wave.size() - 20);
}

TEST(Trigger, ShortWaveformDefaultsToZero) {
  const std::vector<double> tiny(30, 1.0);
  EXPECT_EQ(estimate_trigger_phase(tiny, 50), 0u);
}

TEST(Trigger, AlignEdgeCases) {
  const std::vector<double> wave = {1.0, 2.0, 3.0};
  EXPECT_TRUE(align_to_trigger(wave, 2, 5).size() == 2);  // phase mod spc
  EXPECT_THROW(align_to_trigger(wave, 0, 0), std::invalid_argument);
  EXPECT_THROW(estimate_trigger_phase(wave, 0), std::invalid_argument);
}

TEST(Trigger, AlignedAveragingRecoversCyclePower) {
  // End-to-end: a misaligned capture block-averaged naively smears
  // alternating cycle powers; after auto_align it recovers them.
  power::WaveformOptions opt;
  std::vector<double> p(100);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = (i % 2 == 0) ? 3e-3 : 1e-3;
  }
  const power::PowerTrace trace(p, 10e6);
  auto wave = power::expand_to_current_waveform(trace, 1.2, opt);
  // Misalign by 17 samples.
  std::vector<double> captured(wave.begin() + 17, wave.end());
  const auto aligned = auto_align(captured, opt.samples_per_cycle);
  // First full cycle of the aligned capture is cycle 1 (power 1 mW).
  double mean0 = 0.0;
  for (std::size_t i = 0; i < opt.samples_per_cycle; ++i) {
    mean0 += aligned[i];
  }
  mean0 /= static_cast<double>(opt.samples_per_cycle);
  const double expected_current = 1e-3 / 1.2;
  EXPECT_NEAR(mean0, expected_current, 0.05 * expected_current);
}

TEST(Trigger, AcquisitionChainRecoversAlignment) {
  // With TriggerSim::kRandomOffset the capture starts mid-cycle; the
  // chain re-aligns via the software edge trigger (PDN off so the edges
  // are visible, as they would be with a die-level probe).
  std::vector<double> p(300);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = (i % 3 == 0) ? 3e-3 : 1e-3;
  }
  const power::PowerTrace trace(p, 10e6);

  AcquisitionConfig cfg;
  cfg.enable_pdn_filter = false;
  cfg.probe.noise_v_rms = 0.0;
  cfg.scope.noise_v_rms = 0.0;
  cfg.trigger_sim = TriggerSim::kRandomOffset;
  cfg.noise_seed = 1234;  // nonzero capture offset
  const auto acq = AcquisitionChain(cfg).measure(trace);

  // At most one cycle lost at the front; the 3-cycle power pattern must
  // reappear exactly (aligned) starting from some small shift.
  ASSERT_GE(acq.per_cycle_power_w.size(), p.size() - 1);
  bool matched = false;
  for (std::size_t shift = 0; shift < 3 && !matched; ++shift) {
    bool ok = true;
    for (std::size_t i = 0; i < 30; ++i) {
      const double expected = ((i + shift) % 3 == 0) ? 3e-3 : 1e-3;
      if (std::abs(acq.per_cycle_power_w[i] - expected) > 0.25e-3) {
        ok = false;
        break;
      }
    }
    matched = ok;
  }
  EXPECT_TRUE(matched);
}

TEST(Trigger, MisalignedCaptureWithoutRecoverySmearys) {
  // Negative control: same offset but no auto-align — the per-cycle
  // averages blend adjacent cycles and the pattern is distorted.
  std::vector<double> p(300);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = (i % 2 == 0) ? 3e-3 : 1e-3;
  }
  const power::PowerTrace trace(p, 10e6);
  AcquisitionConfig cfg;
  cfg.enable_pdn_filter = false;
  cfg.probe.noise_v_rms = 0.0;
  cfg.scope.noise_v_rms = 0.0;
  const auto aligned = AcquisitionChain(cfg).measure(trace);
  const double span_aligned =
      *std::max_element(aligned.per_cycle_power_w.begin(),
                        aligned.per_cycle_power_w.end()) -
      *std::min_element(aligned.per_cycle_power_w.begin(),
                        aligned.per_cycle_power_w.end());
  EXPECT_GT(span_aligned, 1.5e-3);  // full 2 mW swing survives
}

}  // namespace
}  // namespace clockmark::measure
