#include "attack/tamper.h"

#include <gtest/gtest.h>

#include "cpa/detector.h"
#include "rtl/simulator.h"
#include "util/rng.h"
#include "watermark/embedder.h"

namespace clockmark::attack {
namespace {

wgc::WgcConfig small_wgc() {
  wgc::WgcConfig cfg;
  cfg.width = 6;
  return cfg;
}

struct Design {
  rtl::Netlist nl;
  rtl::NetId clk = 0;
  watermark::DemoIpBlock ip;
};

Design clean_ip() {
  Design d;
  d.clk = d.nl.add_net("clk");
  d.ip = watermark::build_demo_ip_block(d.nl, "soc/ip", d.clk, {4, 16});
  return d;
}

TEST(FanoutSignature, NaiveEmbeddingIsFlagged) {
  Design d = clean_ip();
  const auto embed = watermark::embed_clock_modulation(
      d.nl, "soc/wgc", d.clk, small_wgc(), d.ip.icgs);
  const auto suspects = find_wmark_fanout_signature(d.nl, 3);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0].net, embed.wmark);
  EXPECT_EQ(suspects[0].and_gates.size(), 4u);
}

TEST(FanoutSignature, DiversifiedEmbeddingIsInvisible) {
  Design d = clean_ip();
  watermark::embed_clock_modulation_diversified(d.nl, "soc/wgc", d.clk,
                                                small_wgc(), d.ip.icgs);
  // Each WGC stage feeds at most one modulation AND: no net reaches the
  // fan-out threshold.
  EXPECT_TRUE(find_wmark_fanout_signature(d.nl, 3).empty());
}

TEST(FanoutSignature, CleanDesignHasNoSuspects) {
  Design d = clean_ip();
  EXPECT_TRUE(find_wmark_fanout_signature(d.nl, 2).empty());
}

TEST(BypassAttack, NeutralisesNaiveEmbedding) {
  Design wm = clean_ip();
  watermark::embed_clock_modulation(wm.nl, "soc/wgc", wm.clk, small_wgc(),
                                    wm.ip.icgs);
  Design ref = clean_ip();
  const auto outcome = bypass_attack(
      wm.nl, ref.nl, wm.clk, ref.clk, wm.ip.data_out, ref.ip.data_out,
      "soc/wgc", 3, 256);
  EXPECT_EQ(outcome.suspects_found, 1u);
  EXPECT_EQ(outcome.gates_bypassed, 4u);
  EXPECT_TRUE(outcome.function_restored);
  EXPECT_FALSE(outcome.watermark_still_wired);
}

TEST(BypassAttack, FailsAgainstDiversifiedEmbedding) {
  Design wm = clean_ip();
  watermark::embed_clock_modulation_diversified(wm.nl, "soc/wgc", wm.clk,
                                                small_wgc(), wm.ip.icgs);
  Design ref = clean_ip();
  const auto outcome = bypass_attack(
      wm.nl, ref.nl, wm.clk, ref.clk, wm.ip.data_out, ref.ip.data_out,
      "soc/wgc", 3, 256);
  EXPECT_EQ(outcome.suspects_found, 0u);
  EXPECT_EQ(outcome.gates_bypassed, 0u);
  // Nothing bypassed: the watermark still gates the functional clocks,
  // so the design does NOT behave like the clean reference...
  EXPECT_FALSE(outcome.function_restored);
  // ...and the WGC still drives the ICGs.
  EXPECT_TRUE(outcome.watermark_still_wired);
}

TEST(DiversifiedModel, PatternSumsStageShifts) {
  wgc::WgcConfig cfg = small_wgc();  // period 63
  const std::vector<unsigned> stages = {0, 2, 5};
  const auto pattern =
      watermark::diversified_model_pattern(cfg, stages);
  ASSERT_EQ(pattern.size(), 63u);
  wgc::WgcSequence seq(cfg);
  const auto base = seq.one_period();
  for (std::size_t i = 0; i < 63; ++i) {
    double expected = 0.0;
    for (const unsigned s : stages) {
      if (base[(i + s) % 63]) expected += 1.0;
    }
    EXPECT_DOUBLE_EQ(pattern[i], expected) << "cycle " << i;
  }
}

TEST(DiversifiedModel, DetectableWithCompositePattern) {
  // Gate-level diversified design: characterise the modulated power per
  // cycle over one period, tile + noise, and verify the composite model
  // finds the phase while the plain WMARK model does worse.
  Design d = clean_ip();
  const auto embed = watermark::embed_clock_modulation_diversified(
      d.nl, "soc/wgc", d.clk, small_wgc(), d.ip.icgs);

  // Period of the full system: WGC period 63 x counter period 8 = 504;
  // characterise power over 504 cycles (a whole joint period).
  rtl::Simulator sim(d.nl);
  sim.set_clock_source(d.clk);
  power::PowerEstimator est(d.nl, power::tsmc65lp_like());
  const std::size_t joint = 504;
  std::vector<double> cycle_power(joint);
  for (std::size_t i = 0; i < joint; ++i) {
    const auto& act = sim.step();
    cycle_power[i] = est.dynamic_cycle_energy(act.total);
  }

  // Long noisy trace by tiling the joint period.
  util::Pcg32 rng(11);
  const std::size_t n = 40000;
  const double sigma = 2e-12;
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = cycle_power[i % joint] + rng.gaussian(0.0, sigma);
  }

  const auto composite = watermark::diversified_model_pattern(
      small_wgc(), embed.stage_of_icg);
  const cpa::Detector detector;
  const auto with_composite = detector.detect(y, composite);
  EXPECT_TRUE(with_composite.detected) << with_composite.reason;
  EXPECT_EQ(with_composite.spectrum.peak_rotation, 0u);

  // The plain single-stage model correlates strictly worse.
  wgc::WgcSequence seq(small_wgc());
  const auto plain = cpa::to_model_pattern(seq.one_period());
  const auto with_plain = detector.detect(y, plain);
  EXPECT_GT(std::abs(with_composite.spectrum.peak_value),
            std::abs(with_plain.spectrum.peak_value));
}

}  // namespace
}  // namespace clockmark::attack
