#include "power/estimator.h"
#include "power/tech65.h"
#include "power/trace.h"
#include "power/waveform.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace clockmark::power {
namespace {

TEST(TechLibrary, PaperCalibrationConstants) {
  const TechLibrary lib = tsmc65lp_like();
  // The paper's two measured constants, as powers at 10 MHz.
  EXPECT_NEAR(lib.clock_buffer_power_w(1), 1.476e-6, 1e-12);
  EXPECT_NEAR(lib.data_switching_power_w(1), 1.126e-6, 1e-12);
  EXPECT_DOUBLE_EQ(lib.vdd_v, 1.2);
  EXPECT_DOUBLE_EQ(lib.clock_hz, 10.0e6);
}

TEST(TechLibrary, TableOneClockBufferRows) {
  // Table I dynamic power: 1024 clock buffers = 1.51 mW; adding 256 / 512
  // / 1024 switching registers gives 1.80 / 2.09 / 2.66 mW.
  const TechLibrary lib = tsmc65lp_like();
  const double buffers = lib.clock_buffer_power_w(1024);
  EXPECT_NEAR(buffers, 1.51e-3, 0.01e-3);
  EXPECT_NEAR(buffers + lib.data_switching_power_w(256), 1.80e-3, 0.01e-3);
  EXPECT_NEAR(buffers + lib.data_switching_power_w(512), 2.09e-3, 0.01e-3);
  EXPECT_NEAR(buffers + lib.data_switching_power_w(1024), 2.66e-3,
              0.01e-3);
}

struct TableTwoRow {
  double p_load_mw;
  std::size_t expected_registers;
  double expected_overhead_pct;
};

class TableTwo : public ::testing::TestWithParam<TableTwoRow> {};

TEST_P(TableTwo, RegistersAndOverheadMatchPaper) {
  const auto row = GetParam();
  const TechLibrary lib = tsmc65lp_like();
  const std::size_t n =
      load_circuit_registers_for_power(lib, row.p_load_mw * 1e-3);
  EXPECT_EQ(n, row.expected_registers);
  // WGC = 12 registers (the chips' 12-bit LFSR).
  const double overhead = area_overhead_increase(n, 12) * 100.0;
  // The paper truncates rather than rounds some rows (e.g. 96.97 -> 96.9),
  // so allow a tenth of a percent.
  EXPECT_NEAR(overhead, row.expected_overhead_pct, 0.1);
}

// The six rows of paper Table II.
INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableTwo,
    ::testing::Values(TableTwoRow{0.25, 96, 88.9},
                      TableTwoRow{0.5, 192, 94.1},
                      TableTwoRow{1.0, 384, 96.9},
                      TableTwoRow{1.5, 576, 98.0},
                      TableTwoRow{5.0, 1921, 99.4},
                      TableTwoRow{10.0, 3843, 99.7}));

TEST(TechLibrary, LeakageMatchesTableOneStatic) {
  // Table I static: ~0.404 uW for the 1024-register block.
  const TechLibrary lib = tsmc65lp_like();
  EXPECT_NEAR(1024 * lib.leakage_w(rtl::CellKind::kDff), 0.404e-6,
              0.01e-6);
}

TEST(TechLibrary, EdgeCases) {
  const TechLibrary lib = tsmc65lp_like();
  EXPECT_EQ(load_circuit_registers_for_power(lib, 0.0), 0u);
  EXPECT_EQ(load_circuit_registers_for_power(lib, -1.0), 0u);
  EXPECT_EQ(area_overhead_increase(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(area_overhead_increase(100, 0), 1.0);
}

TEST(PowerEstimator, DynamicEnergyFromActivity) {
  rtl::Netlist nl;
  const PowerEstimator est(nl, tsmc65lp_like());
  rtl::ModuleActivity a;
  a.active_buffers = 10;
  a.flop_toggles = 5;
  a.active_icgs = 2;
  a.gated_icgs = 3;
  a.comb_toggles = 7;
  const TechLibrary& lib = est.library();
  const double expected = 10 * lib.clock_buffer_cycle_j +
                          5 * lib.flop_data_toggle_j +
                          2 * lib.icg_active_cycle_j +
                          3 * lib.icg_idle_cycle_j + 7 * lib.comb_toggle_j;
  EXPECT_NEAR(est.dynamic_cycle_energy(a), expected, 1e-21);
}

TEST(PowerEstimator, LeakageCensus) {
  rtl::Netlist nl;
  const auto m = nl.module("blk");
  const rtl::NetId clk = nl.add_net("clk");
  const rtl::NetId d = nl.add_net("d");
  const rtl::NetId q = nl.add_net("q");
  const rtl::NetId o = nl.add_net("o");
  nl.add_flop(rtl::CellKind::kDff, "f", m, {d}, q, clk);
  nl.add_gate(rtl::CellKind::kInv, "i", m, {q}, o);
  const PowerEstimator est(nl, tsmc65lp_like());
  const TechLibrary& lib = est.library();
  EXPECT_NEAR(est.leakage_power("blk"), lib.flop_leak_w + lib.comb_leak_w,
              1e-18);
  EXPECT_NEAR(est.leakage_power("other"), 0.0, 1e-18);
  EXPECT_GT(est.area("blk"), 0.0);
}

TEST(PowerTrace, ArithmeticAndStats) {
  PowerTrace a({1e-3, 2e-3, 3e-3}, 10e6, "a");
  PowerTrace b({1e-3, 1e-3, 1e-3}, 10e6, "b");
  a += b;
  EXPECT_DOUBLE_EQ(a[0], 2e-3);
  EXPECT_DOUBLE_EQ(a.average_w(), 3e-3);
  EXPECT_DOUBLE_EQ(a.peak_w(), 4e-3);
  a.add_constant(1e-3);
  EXPECT_DOUBLE_EQ(a[0], 3e-3);
  a.scale(2.0);
  EXPECT_DOUBLE_EQ(a[0], 6e-3);
  const auto i = a.current_a(1.2);
  EXPECT_NEAR(i[0], 6e-3 / 1.2, 1e-12);
}

TEST(PowerTrace, MismatchedAddThrows) {
  PowerTrace a({1.0, 2.0}, 10e6);
  PowerTrace b({1.0}, 10e6);
  EXPECT_THROW(a += b, std::invalid_argument);
  PowerTrace c({1.0, 2.0}, 20e6);
  EXPECT_THROW(a += c, std::invalid_argument);
}

TEST(PowerTrace, InvalidConstruction) {
  EXPECT_THROW(PowerTrace({1.0}, 0.0), std::invalid_argument);
  PowerTrace t({1.0}, 10e6);
  EXPECT_THROW(t.current_a(0.0), std::invalid_argument);
}

TEST(Waveform, TemplateSumsToOne) {
  WaveformOptions opt;
  const auto tpl = cycle_pulse_template(opt);
  ASSERT_EQ(tpl.size(), opt.samples_per_cycle);
  EXPECT_NEAR(std::accumulate(tpl.begin(), tpl.end(), 0.0), 1.0, 1e-12);
  for (const double v : tpl) EXPECT_GE(v, 0.0);
}

TEST(Waveform, TemplateHasTwoEdgePulses) {
  WaveformOptions opt;
  const auto tpl = cycle_pulse_template(opt);
  // Peak at rising edge (sample 0) and another local rise at mid-cycle.
  EXPECT_GT(tpl[0], tpl[opt.samples_per_cycle / 4]);
  EXPECT_GT(tpl[opt.samples_per_cycle / 2],
            tpl[opt.samples_per_cycle / 2 - 1]);
}

TEST(Waveform, ExpansionPreservesPerCycleMeanCurrent) {
  WaveformOptions opt;
  const PowerTrace trace({1.2e-3, 2.4e-3, 0.6e-3}, 10e6);
  const auto wave = expand_to_current_waveform(trace, 1.2, opt);
  ASSERT_EQ(wave.size(), 3 * opt.samples_per_cycle);
  for (std::size_t c = 0; c < 3; ++c) {
    double mean = 0.0;
    for (std::size_t i = 0; i < opt.samples_per_cycle; ++i) {
      mean += wave[c * opt.samples_per_cycle + i];
    }
    mean /= static_cast<double>(opt.samples_per_cycle);
    EXPECT_NEAR(mean, trace[c] / 1.2, 1e-12) << "cycle " << c;
  }
}

TEST(Waveform, InvalidOptionsThrow) {
  WaveformOptions opt;
  opt.samples_per_cycle = 0;
  EXPECT_THROW(cycle_pulse_template(opt), std::invalid_argument);
  const PowerTrace trace({1e-3}, 10e6);
  WaveformOptions ok;
  EXPECT_THROW(expand_to_current_waveform(trace, 0.0, ok),
               std::invalid_argument);
}

}  // namespace
}  // namespace clockmark::power
