#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <set>
#include <vector>

#include "util/fastmath.h"

namespace clockmark::util {
namespace {

TEST(Pcg32, SameSeedSameSequence) {
  Pcg32 a(42, 7);
  Pcg32 b(42, 7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a(42, 7);
  Pcg32 b(43, 7);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, DifferentStreamsDiffer) {
  Pcg32 a(42, 7);
  Pcg32 b(42, 8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, BoundedStaysInRange) {
  Pcg32 rng(1);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u, 4095u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Pcg32, BoundedCoversRange) {
  Pcg32 rng(5);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Pcg32, UniformInUnitInterval) {
  Pcg32 rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Pcg32, UniformRangeRespectsBounds) {
  Pcg32 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Pcg32, GaussianMoments) {
  Pcg32 rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Pcg32, GaussianScaled) {
  Pcg32 rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Pcg32, BernoulliRate) {
  Pcg32 rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Pcg32, ForkIsIndependentOfParentConsumption) {
  // Forking with the same salt from the same state gives the same child.
  Pcg32 parent1(23, 5);
  Pcg32 parent2(23, 5);
  Pcg32 child1 = parent1.fork(99);
  Pcg32 child2 = parent2.fork(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(child1(), child2());
  }
}

TEST(Pcg32, ForkDifferentSaltsDiffer) {
  Pcg32 parent(23, 5);
  Pcg32 a = parent.fork(1);
  Pcg32 b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(FillGaussian, MatchesSequentialDrawsBitExact) {
  // The batched fill is a reordering of the same arithmetic, not a new
  // generator: every output bit and the final generator state must match
  // scalar gaussian() draws, across batch boundaries (kPairs = 512) and
  // for odd lengths that leave a cached partner behind.
  for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                              std::size_t{17}, std::size_t{1024},
                              std::size_t{1025}, std::size_t{5000}}) {
    Pcg32 scalar(123, 9);
    Pcg32 batched(123, 9);
    std::vector<double> expect(n);
    for (auto& v : expect) v = scalar.gaussian(0.25, 1.5);
    std::vector<double> got(n);
    batched.fill_gaussian(got, 0.25, 1.5);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(expect[i], got[i]) << "n=" << n << " i=" << i;
    }
    // Both generators (including the pair cache) must be in the same
    // state afterwards: the continuation sequences coincide.
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(scalar.gaussian(), batched.gaussian()) << "n=" << n;
    }
  }
}

TEST(FillGaussian, ConsumesPendingCachedPartner) {
  // A scalar draw leaves the Box-Muller partner cached; a following fill
  // must emit it first, exactly as continued scalar draws would.
  Pcg32 scalar(77, 3);
  Pcg32 batched(77, 3);
  ASSERT_EQ(scalar.gaussian(), batched.gaussian());
  std::vector<double> expect(33);
  for (auto& v : expect) v = scalar.gaussian(-1.0, 0.5);
  std::vector<double> got(33);
  batched.fill_gaussian(got, -1.0, 0.5);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(expect[i], got[i]) << i;
  }
}

TEST(FastMath, LogMatchesLibmClosely) {
  // fastmath.h promises near-correctly-rounded accuracy over the
  // Box-Muller input domain (0, 1).
  Pcg32 rng(11, 1);
  double worst = 0.0;
  for (int i = 0; i < 200000; ++i) {
    double u = rng.uniform();
    if (u <= 0.0) continue;
    const double got = fast_log(u);
    const double ref = std::log(u);
    worst = std::max(worst, std::abs(got - ref) / std::abs(ref));
  }
  EXPECT_LT(worst, 1e-13);
}

TEST(FastMath, SinCosMatchesLibmClosely) {
  Pcg32 rng(12, 1);
  double worst = 0.0;
  for (int i = 0; i < 200000; ++i) {
    const double u = rng.uniform();
    double s = 0.0;
    double c = 0.0;
    fast_sincos_2pi(u, s, c);
    constexpr double two_pi = 6.283185307179586476925286766559;
    worst = std::max(worst, std::abs(s - std::sin(two_pi * u)));
    worst = std::max(worst, std::abs(c - std::cos(two_pi * u)));
  }
  EXPECT_LT(worst, 1e-14);
}

TEST(Splitmix64, AdvancesAndMixes) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);  // deterministic
}

}  // namespace
}  // namespace clockmark::util
