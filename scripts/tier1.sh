#!/usr/bin/env bash
# Tier-1 verification: the full build + test sweep, the cm_lint design-rule
# gate, then sanitizer passes — ThreadSanitizer over the concurrency-
# sensitive binaries (the cm_runtime primitives and the sim/experiment
# drivers that fan repetitions out over them) and UBSan over the
# arithmetic-heavy sequence/dsp/cpa tests.
#
# Usage: scripts/tier1.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
[[ "${1:-}" == "--skip-tsan" ]] && SKIP_TSAN=1

echo "=== tier-1: build + full test suite ==="
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "=== tier-1: bench smoke (perf binaries + --json records) ==="
# Optimized-build smoke of the perf-tracking binaries: a minimal
# google-benchmark sweep plus the fig6/stream/acquisition JSON writers,
# so the bench targets and their machine-readable output can't silently
# rot. Thread counts come from the box itself (clamped to >= 1) rather
# than assuming a multi-core host; steps that *measure* parallel scaling
# self-skip below when only one hardware thread exists.
SMOKE_DIR=build/bench_smoke
SMOKE_THREADS="$(nproc)"
[[ "${SMOKE_THREADS}" -ge 1 ]] || SMOKE_THREADS=1
rm -rf "${SMOKE_DIR}"
mkdir -p "${SMOKE_DIR}"
./build/bench/abl_cpa_speed --benchmark_min_time=0.01 \
  --benchmark_filter='BM_Fft/10/30000|BM_NaiveRef/5/120000|BM_Blocked/5/120000|BM_Blocked/10/30000|BM_Folded/5/120000' \
  --json="${SMOKE_DIR}/BENCH_cpa_speed.json" > "${SMOKE_DIR}/cpa_speed.log"
if [[ "${SMOKE_THREADS}" -gt 1 ]]; then
  ./build/bench/abl_cpa_speed --benchmark_min_time=0.01 \
    --benchmark_filter='BM_NaiveParallel/10/30000/2' \
    > "${SMOKE_DIR}/cpa_parallel.log"
else
  echo "bench smoke: 1 hardware thread — skipping parallel-scaling smoke"
fi
# --trials=3: gated timing metrics are best-of-3 minima — a single
# pass on this box swings by tens of percent under neighbouring load,
# which a 25% gate margin cannot absorb.
./build/bench/fig6_repeatability --reps=2 --cycles=20000 --trials=3 \
  --threads="${SMOKE_THREADS}" --out="${SMOKE_DIR}/fig6" \
  --json="${SMOKE_DIR}/BENCH_fig6.json" > "${SMOKE_DIR}/fig6.log"
./build/bench/abl_stream_latency --cycles=32768 --chunk=2048 --trials=3 \
  --threads="${SMOKE_THREADS}" --out="${SMOKE_DIR}/stream" \
  --json="${SMOKE_DIR}/BENCH_stream.json" > "${SMOKE_DIR}/stream.log"
./build/bench/abl_acq_speed --reps=2 --cycles=60000 --trials=3 \
  --out="${SMOKE_DIR}/acq" \
  --json="${SMOKE_DIR}/BENCH_acq.json" > "${SMOKE_DIR}/acq.log"
./build/bench/abl_sync_search --reps=2 --cycles=60000 \
  --threads="${SMOKE_THREADS}" --out="${SMOKE_DIR}/sync" \
  --json="${SMOKE_DIR}/BENCH_sync.json" > "${SMOKE_DIR}/sync.log"
# --threads=1 regardless of the box: the committed BENCH_service.json
# baseline is a single-worker record, and service throughput scales with
# the worker count.
./build/bench/abl_service_load --jobs=12 --tenants=4 --threads=1 \
  --cycles=12000 --out="${SMOKE_DIR}/service" \
  --json="${SMOKE_DIR}/BENCH_service.json" > "${SMOKE_DIR}/service.log"
# The batched-acquisition consumers without a BenchJson record: quick
# runs so the Scenario::run_batch call paths can't silently rot.
./build/bench/abl_noise_sweep --reps=2 --cycles=20000 \
  --out="${SMOKE_DIR}/noise" > "${SMOKE_DIR}/noise.log"
./build/bench/abl_presence_scan --reps=2 --cycles=20000 \
  --threads="${SMOKE_THREADS}" --out="${SMOKE_DIR}/presence" \
  > "${SMOKE_DIR}/presence.log"
for f in BENCH_cpa_speed.json BENCH_fig6.json BENCH_stream.json \
    BENCH_acq.json BENCH_sync.json BENCH_service.json; do
  if [[ ! -s "${SMOKE_DIR}/${f}" ]]; then
    echo "bench smoke: missing or empty ${SMOKE_DIR}/${f}" >&2
    exit 1
  fi
  grep -q '"records"' "${SMOKE_DIR}/${f}" || {
    echo "bench smoke: ${SMOKE_DIR}/${f} has no records" >&2
    exit 1
  }
done

echo "=== tier-1: perf-regression gate ==="
# Compares the smoke-run BenchJson records against the committed
# baselines (recorded with the same flags on the reference box); any
# tracked throughput metric more than 25 % below baseline fails. See
# scripts/perf_gate.py and README "Performance tracking".
scripts/perf_gate.py --baseline bench_results/BENCH_acq.json \
  --current "${SMOKE_DIR}/BENCH_acq.json"
scripts/perf_gate.py --baseline bench_results/BENCH_cpa_speed.json \
  --current "${SMOKE_DIR}/BENCH_cpa_speed.json"
scripts/perf_gate.py --baseline bench_results/BENCH_fig6.json \
  --current "${SMOKE_DIR}/BENCH_fig6.json"
scripts/perf_gate.py --baseline bench_results/BENCH_stream.json \
  --current "${SMOKE_DIR}/BENCH_stream.json"
scripts/perf_gate.py --baseline bench_results/BENCH_sync.json \
  --current "${SMOKE_DIR}/BENCH_sync.json"
scripts/perf_gate.py --baseline bench_results/BENCH_service.json \
  --current "${SMOKE_DIR}/BENCH_service.json"

echo "=== tier-1: detection-service smoke (detect_serve --selftest) ==="
# The daemon comes up on an ephemeral port, a TCP client submits a batch
# chip-I scenario job and a blind-sync job over a desynced CMTRACE2
# file, verifies both verdicts, cancels a third queued job, and asks for
# a clean shutdown — exit 0 only if every step behaved.
./build/examples/detect_serve --selftest > "${SMOKE_DIR}/serve_selftest.log"

echo "=== tier-1: design-rule lint gate (cm_lint) ==="
LINT_DIR=build/lint_smoke
rm -rf "${LINT_DIR}"
mkdir -p "${LINT_DIR}"
# The chip/embedding presets plus the WGC key sweep must lint clean.
./build/examples/lint_design --sweep > "${LINT_DIR}/presets.txt"
./build/examples/lint_design --sweep --json --out="${LINT_DIR}/presets.json"
if [[ ! -s "${LINT_DIR}/presets.json" ]]; then
  echo "lint gate: missing or empty ${LINT_DIR}/presets.json" >&2
  exit 1
fi
grep -q '"schema": "cm-lint-1"' "${LINT_DIR}/presets.json" || {
  echo "lint gate: presets.json lacks the cm-lint-1 schema marker" >&2
  exit 1
}
if grep -q '"severity": "error"' "${LINT_DIR}/presets.json"; then
  echo "lint gate: error-severity finding in the preset designs" >&2
  exit 1
fi
# The stand-alone load-circuit baseline must be rejected (paper Sec. VI).
if ./build/examples/lint_design --designs=load_circuit \
    > "${LINT_DIR}/load_circuit.txt"; then
  echo "lint gate: load-circuit baseline was not rejected" >&2
  exit 1
fi

echo "=== tier-1: SoC clock-description gate (cm_socdesc) ==="
SOC_DIR=build/soc_smoke
rm -rf "${SOC_DIR}"
mkdir -p "${SOC_DIR}"
# The committed multi-domain showcase must parse, elaborate and lint
# clean through the user-description path.
./build/examples/lint_design --soc=examples/socs/multi_domain.yaml \
  > "${SOC_DIR}/showcase.txt"
grep -q 'demo_soc: 0 error(s), 0 warning(s)' "${SOC_DIR}/showcase.txt" || {
  echo "soc gate: showcase description did not lint clean" >&2
  exit 1
}
# 100 generated designs through render -> parse -> elaborate -> lint:
# the clean corpus carries zero errors and zero warnings, and two runs
# from the same seed must agree byte for byte.
./build/examples/soc_lint --count=100 --seed=1 \
  --threads="${SMOKE_THREADS}" > "${SOC_DIR}/corpus.txt"
grep -q '100/100 design(s) ok' "${SOC_DIR}/corpus.txt" || {
  echo "soc gate: clean corpus did not lint clean" >&2
  exit 1
}
./build/examples/soc_lint --count=100 --seed=1 \
  --threads="${SMOKE_THREADS}" > "${SOC_DIR}/corpus2.txt"
cmp -s "${SOC_DIR}/corpus.txt" "${SOC_DIR}/corpus2.txt" || {
  echo "soc gate: corpus sweep is not deterministic from seed 1" >&2
  exit 1
}
# Every planted defect kind must trip its multi-domain rule on every seed.
for pair in "aliased-domain domain-aliasing" \
    "test-bypass test-bypassable-watermark" \
    "glitch-mux glitch-prone-mux" \
    "key-collision cross-domain-collision"; do
  defect="${pair%% *}"
  rule="${pair##* }"
  ./build/examples/soc_lint --count=16 --seed=1 \
    --threads="${SMOKE_THREADS}" --defect="${defect}" \
    > "${SOC_DIR}/defect_${defect}.txt"
  grep -q -- "-> rule ${rule}" "${SOC_DIR}/defect_${defect}.txt" || {
    echo "soc gate: defect ${defect} did not report rule ${rule}" >&2
    exit 1
  }
done

echo "=== tier-1: clang-tidy (skipped when unavailable) ==="
scripts/lint.sh build

if [[ "${SKIP_TSAN}" == "1" ]]; then
  echo "=== tier-1: sanitizer passes skipped (--skip-tsan) ==="
  exit 0
fi

echo "=== tier-1: TSan pass (runtime + dsp + sim + stream + sync tests) ==="
cmake -B build-tsan -S . -DCLOCKMARK_SANITIZE=thread
cmake --build build-tsan -j --target test_runtime test_dsp test_integration \
  test_stream test_sync test_detect test_serve soc_lint
# The corpus sweep fans designs out over the Executor: run it with more
# workers than the box has cores so TSan sees real interleavings.
./build-tsan/examples/soc_lint --count=16 --seed=1 --threads=4 \
  > build/soc_smoke/tsan_sweep.txt
# Note: -j needs an explicit value here — a bare `-j` would consume the
# following -R as its argument and run the whole (partially built) list.
(cd build-tsan && ctest --output-on-failure -j"$(nproc)" \
  -R '^(ThreadPool|Executor|SeedDerive|ParallelCorrelation|ParallelStudy|Scenario|ScenarioMemo|FftPlan|EndToEnd|BoundedQueue|OnlineDetector|StreamPipeline|TraceIo|RotationAccumulator|ChipsAndThreads|Warp|BlindSync|Chips/BlindSyncChips|SyncEngine|Chips/SyncEngineChips|DetectFacade|DetectFile|EngineCacheLru|ServeQueue|ServeBroker|ServeService|ServeProtocol|ServeLocalClient|ServeHost|BatchAcquireScenario|BatchAcquireSpectrumEngine|BatchAcquireStudy)')

echo "=== tier-1: UBSan pass (sequence + dsp + cpa tests) ==="
# -fno-sanitize-recover=all: any triggered check aborts the binary, so a
# plain run is the gate — no log scraping.
cmake -B build-ubsan -S . -DCLOCKMARK_SANITIZE=undefined
cmake --build build-ubsan -j --target test_sequence test_dsp test_cpa \
  test_socdesc
./build-ubsan/tests/test_sequence
./build-ubsan/tests/test_dsp
./build-ubsan/tests/test_cpa
./build-ubsan/tests/test_socdesc

echo "=== tier-1: OK ==="
