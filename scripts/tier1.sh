#!/usr/bin/env bash
# Tier-1 verification: the full build + test sweep, then a ThreadSanitizer
# pass over the concurrency-sensitive binaries (the cm_runtime primitives
# and the sim/experiment drivers that fan repetitions out over them).
#
# Usage: scripts/tier1.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
[[ "${1:-}" == "--skip-tsan" ]] && SKIP_TSAN=1

echo "=== tier-1: build + full test suite ==="
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "${SKIP_TSAN}" == "1" ]]; then
  echo "=== tier-1: TSan pass skipped (--skip-tsan) ==="
  exit 0
fi

echo "=== tier-1: TSan pass (runtime + sim tests) ==="
cmake -B build-tsan -S . -DCLOCKMARK_SANITIZE=thread
cmake --build build-tsan -j --target test_runtime test_integration
(cd build-tsan && ctest --output-on-failure -j \
  -R '^(ThreadPool|Executor|SeedDerive|ParallelCorrelation|ParallelStudy|Scenario|EndToEnd)\.')

echo "=== tier-1: OK ==="
