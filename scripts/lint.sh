#!/usr/bin/env bash
# Static analysis pass: clang-tidy over the compilation database with the
# repo's curated .clang-tidy profile.
#
# Usage: scripts/lint.sh [build-dir] [-- extra clang-tidy args]
#
# Self-gating: the container image ships gcc only, so when clang-tidy is
# absent this script prints a notice and exits 0 — CI lanes that do have
# clang-tidy get the full pass, others are not broken by it.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint.sh: clang-tidy not installed; skipping static analysis pass"
  exit 0
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "lint.sh: ${BUILD_DIR}/compile_commands.json missing." >&2
  echo "         configure first: cmake -B ${BUILD_DIR} -S ." >&2
  exit 1
fi

shift $(( $# > 0 ? 1 : 0 )) || true
if [ "${1:-}" = "--" ]; then shift; fi

# Lint the first-party translation units only (skip generated/third-party
# entries the database may pick up).
mapfile -t SOURCES < <(git ls-files 'src/**/*.cpp' 'examples/*.cpp')

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "${BUILD_DIR}" -quiet "$@" "${SOURCES[@]}"
else
  STATUS=0
  for src in "${SOURCES[@]}"; do
    clang-tidy -p "${BUILD_DIR}" --quiet "$@" "${src}" || STATUS=1
  done
  exit "${STATUS}"
fi
