#!/usr/bin/env python3
"""Perf-regression gate over the BenchJson records.

Compares a freshly produced bench --json record against the committed
baseline in bench_results/ and fails (exit 1) when any tracked throughput
metric regressed by more than the allowed fraction.

Usage:
  scripts/perf_gate.py --baseline bench_results/BENCH_acq.json \
      --current build/bench_smoke/BENCH_acq.json [--max-regression 0.25]

Update mode (after an intentional perf change):
  scripts/perf_gate.py --update --baseline bench_results/BENCH_acq.json \
      --current build/bench_smoke/BENCH_acq.json [--build-dir build]
copies the fresh record over the committed baseline instead of gating
against it. As a guard against enshrining numbers from a broken tree,
--update first runs ctest in --build-dir and refuses to touch the
baseline when any test fails (--skip-tests for the rare emergency).
The comparison is still printed, so the change being baked in is
visible in the terminal.

Comparison rules (kept deliberately small):
  * records are matched by "name"; a record present only on one side is
    reported but never fails the gate (benches grow new cases),
  * higher-is-better metrics (anything ending in "_per_sec" or named
    "speedup") fail when current < baseline * (1 - max_regression),
  * lower-is-better timing metrics (anything ending in "_s_per_rep" or
    "_s_per_iter") fail when current > baseline * (1 + max_regression),
  * other metrics (cycles, thresholds, flags) are ignored,
  * a tracked baseline metric absent from a *matched* fresh record fails
    the gate with a pointer at --update (the bench stopped emitting a
    number the gate was guarding).

Baselines are recorded on the reference box (single core, gcc -O3); the
default 25 % margin absorbs normal scheduler/turbo noise there. On
different hardware the absolute numbers shift together, so the gate
stays meaningful as long as baseline and current come from the same
machine — regenerate the baselines (see README) after intentional perf
changes or when moving the reference box.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys

HIGHER_IS_BETTER_SUFFIXES = ("_per_sec",)
HIGHER_IS_BETTER_NAMES = ("speedup", "items_per_sec", "samples_per_sec")
LOWER_IS_BETTER_SUFFIXES = ("_s_per_rep", "_s_per_iter")


def classify(metric):
    """Returns 'higher', 'lower' or None (untracked)."""
    if metric in HIGHER_IS_BETTER_NAMES or metric.endswith(
        HIGHER_IS_BETTER_SUFFIXES
    ):
        return "higher"
    if metric.endswith(LOWER_IS_BETTER_SUFFIXES):
        return "lower"
    return None


def load_records(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    records = {}
    for record in doc.get("records", []):
        name = record.get("name")
        if name is None:
            raise ValueError(f"{path}: record without a name")
        metrics = {
            k: v
            for k, v in record.items()
            if k != "name" and isinstance(v, (int, float))
        }
        records[name] = metrics
    return doc.get("bench", "?"), records


def main(argv):
    parser = argparse.ArgumentParser(
        description="Fail when a bench --json record regressed vs baseline."
    )
    parser.add_argument(
        "--baseline", required=True, help="committed BenchJson baseline"
    )
    parser.add_argument(
        "--current", required=True, help="freshly produced BenchJson record"
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional regression (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy --current over --baseline instead of gating "
        "(refuses when ctest fails in --build-dir)",
    )
    parser.add_argument(
        "--build-dir",
        default="build",
        help="build tree whose ctest must pass before --update (default:"
        " build)",
    )
    parser.add_argument(
        "--skip-tests",
        action="store_true",
        help="--update without the ctest guard (emergency use only)",
    )
    args = parser.parse_args(argv)

    bench_cur, current = load_records(args.current)
    if os.path.exists(args.baseline):
        bench_base, baseline = load_records(args.baseline)
    elif args.update:
        # First recording of a new bench: nothing to compare against.
        bench_base, baseline = bench_cur, {}
    else:
        print(f"perf gate: missing baseline {args.baseline}",
              file=sys.stderr)
        return 1
    if bench_base != bench_cur:
        print(
            f"perf gate: comparing different benches "
            f"('{bench_base}' baseline vs '{bench_cur}' current)",
            file=sys.stderr,
        )
        return 1

    if args.update:
        if args.skip_tests:
            print("perf gate: --update with --skip-tests: ctest guard "
                  "bypassed")
        else:
            print(f"perf gate: --update: running ctest in {args.build_dir}")
            result = subprocess.run(
                ["ctest", "--output-on-failure"], cwd=args.build_dir
            )
            if result.returncode != 0:
                print(
                    "perf gate: refusing --update: ctest failed in "
                    f"{args.build_dir} (fix the tests or pass --skip-tests)",
                    file=sys.stderr,
                )
                return 1

    failures = []
    missing = []
    compared = 0
    for name, base_metrics in sorted(baseline.items()):
        if name not in current:
            # Not an error: smoke runs filter benches down to a subset of
            # the baseline's records.
            print(f"  [skip] record '{name}' missing from current run")
            continue
        cur_metrics = current[name]
        for metric, base_value in sorted(base_metrics.items()):
            direction = classify(metric)
            if direction is None:
                continue
            if metric not in cur_metrics:
                # A matched record that stopped emitting a tracked metric
                # means the bench changed shape: the gate would silently
                # stop guarding that number. Fail with a pointer instead.
                print(f"  [missing] {name}.{metric}: in baseline but absent "
                      f"from the fresh record")
                missing.append(f"{name}.{metric}")
                continue
            cur_value = cur_metrics[metric]
            if base_value <= 0.0:
                continue
            compared += 1
            change = cur_value / base_value - 1.0
            if direction == "higher":
                bad = change < -args.max_regression
            else:
                bad = change > args.max_regression
            marker = "FAIL" if bad else "ok"
            print(
                f"  [{marker}] {name}.{metric}: baseline {base_value:.6g}, "
                f"current {cur_value:.6g} ({change:+.1%})"
            )
            if bad:
                failures.append(f"{name}.{metric} ({change:+.1%})")
    for name in sorted(set(current) - set(baseline)):
        print(f"  [new]  record '{name}' has no baseline yet")

    if args.update:
        # The comparison above is informational; the fresh record
        # becomes the baseline regardless of direction.
        shutil.copyfile(args.current, args.baseline)
        print(
            f"perf gate: baseline {args.baseline} updated from "
            f"{args.current} ({len(current)} record(s))"
        )
        return 0
    if missing:
        print(
            f"perf gate: {bench_cur}: {len(missing)} baseline metric(s) "
            "missing from the fresh record: " + ", ".join(missing) + ". "
            "The bench no longer emits them; if the rename/removal is "
            "intentional, re-record the baseline with --update.",
            file=sys.stderr,
        )
        return 1
    if compared == 0:
        print(
            f"perf gate: no comparable metrics between {args.baseline} and "
            f"{args.current}",
            file=sys.stderr,
        )
        return 1
    if failures:
        print(
            f"perf gate: {bench_cur}: {len(failures)} metric(s) regressed "
            f"more than {args.max_regression:.0%}: " + ", ".join(failures),
            file=sys.stderr,
        )
        return 1
    print(
        f"perf gate: {bench_cur}: {compared} metric(s) within "
        f"{args.max_regression:.0%} of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
